"""Power-law graph generators: Barabási–Albert and R-MAT.

These model the paper's social networks (LJ, OK, TW, FS), web graphs (EH,
SD, CW, HL) and the synthetic HPL graph (explicitly Barabási–Albert in the
paper).  The structural property that matters for the experiments is the
heavy degree tail: a handful of very-high-degree hubs concentrate atomic
decrements and create the contention the sampling scheme targets.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def barabasi_albert(
    n: int,
    attach: int,
    seed: int = 0,
    name: str = "",
    attach_min: int | None = None,
) -> CSRGraph:
    """Barabási–Albert preferential attachment.

    Starts from a small clique and attaches each new vertex to ``attach``
    existing vertices chosen proportionally to degree (the classic "urn"
    construction: endpoints are drawn uniformly from the list of all edge
    endpoints so far).

    With ``attach_min`` set, each new vertex draws its attachment count
    uniformly from ``[attach_min, attach]``.  Pure BA gives every vertex
    coreness exactly ``attach``; varying the attachment count produces the
    graded coreness distribution real social networks show, which the
    suite's social graphs use.
    """
    if attach < 1:
        raise ValueError(f"attach must be >= 1, got {attach}")
    if n <= attach:
        raise ValueError(f"need n > attach, got n={n}, attach={attach}")
    if attach_min is not None and not 1 <= attach_min <= attach:
        raise ValueError(
            f"need 1 <= attach_min <= attach, got {attach_min}"
        )
    rng = np.random.default_rng(seed)

    # Urn of endpoints in a preallocated flat array (two slots per edge);
    # seeded with a (attach+1)-clique.  The layout — and the RNG stream —
    # are bit-identical to the reference list-based builder in
    # :mod:`repro.generators.reference` (pinned by the generator
    # equivalence tests): the urn contents are appended in the same
    # order, and a block draw of ``count`` bounded integers consumes the
    # generator exactly like ``count`` scalar draws.
    seed_size = attach + 1
    clique = np.arange(seed_size, dtype=np.int64)
    cs, cd = np.meshgrid(clique, clique)
    mask = cs < cd
    clique_src = cs[mask].ravel()
    clique_dst = cd[mask].ravel()
    clique_edges = clique_src.size

    max_edges = clique_edges + (n - seed_size) * attach
    src = np.empty(max_edges, dtype=np.int64)
    dst = np.empty(max_edges, dtype=np.int64)
    urn = np.empty(2 * max_edges, dtype=np.int64)
    src[:clique_edges] = clique_src
    dst[:clique_edges] = clique_dst
    urn[:clique_edges] = clique_src
    urn[clique_edges : 2 * clique_edges] = clique_dst
    ep = clique_edges  # edges written
    ulen = 2 * clique_edges  # urn endpoints written

    for v in range(seed_size, n):
        # Draw the attachment count, then that many distinct targets by
        # degree-proportional sampling: one block of ``count`` draws,
        # then scalar rejection draws only if the block had duplicates
        # (the reference draws until the target *set* reaches count).
        if attach_min is None:
            count = attach
        else:
            count = int(rng.integers(attach_min, attach + 1))
        picks = urn[rng.integers(0, ulen, size=count)]
        targets = set(picks.tolist())
        while len(targets) < count:
            targets.add(int(urn[int(rng.integers(ulen))]))
        tarr = np.fromiter(targets, dtype=np.int64, count=len(targets))
        src[ep : ep + count] = v
        dst[ep : ep + count] = tarr
        urn[ulen : ulen + count] = tarr
        urn[ulen + count : ulen + 2 * count] = v
        ep += count
        ulen += 2 * count

    edges = np.stack([src[:ep], dst[:ep]], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"ba-{n}-{attach}")


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """R-MAT (Kronecker) generator — the Graph500 parameterization.

    Produces ``2**scale`` vertices and about ``edge_factor * 2**scale``
    undirected edges with a skewed degree distribution; the default
    ``(a, b, c) = (0.57, 0.19, 0.19)`` gives web-graph-like hubs.
    Duplicate edges and self-loops are removed by CSR construction, so the
    final edge count is slightly below the nominal one.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    if not 0 < a + b + c < 1:
        raise ValueError("require 0 < a + b + c < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for level in range(scale):
        r = rng.random(m)
        go_right = (r >= a) & (r < ab) | (r >= abc)
        go_down = r >= ab
        bit = np.int64(1 << (scale - 1 - level))
        src += bit * go_down
        dst += bit * go_right
    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"rmat-{scale}")


def power_law_with_hub(
    n: int,
    attach: int,
    hub_count: int = 4,
    hub_degree: int | None = None,
    seed: int = 0,
    name: str = "",
    attach_min: int | None = None,
    hub_targets: str = "uniform",
) -> CSRGraph:
    """A BA graph with a few explicit super-hubs.

    Mirrors the Twitter-like graphs where a tiny number of celebrity
    vertices (about 1000 out of 40M in the paper's TW) have enormous
    degrees — the configuration that makes sampling shine.  ``hub_degree``
    defaults to ``n // 4`` extra followers per hub.

    ``hub_targets`` selects who follows the hubs: ``"uniform"`` draws
    followers from the whole graph (the hubs join the dense core);
    ``"fresh"`` gives each hub its own brand-new degree-1 follower
    vertices, producing the classic celebrity pattern of enormous degree
    but *low coreness* (Kitsak et al. 2010) — degree-1 followers cannot
    support any core.
    """
    if hub_targets not in ("uniform", "fresh"):
        raise ValueError(f"unknown hub_targets {hub_targets!r}")
    base = barabasi_albert(n, attach, seed=seed, attach_min=attach_min)
    rng = np.random.default_rng(seed + 1)
    hub_degree = hub_degree if hub_degree is not None else n // 4
    hubs = rng.choice(n, size=min(hub_count, n), replace=False)
    extra_src: list[np.ndarray] = []
    extra_dst: list[np.ndarray] = []
    total_n = n
    for hub in hubs:
        if hub_targets == "fresh":
            followers = total_n + np.arange(hub_degree, dtype=np.int64)
            total_n += hub_degree
        else:
            followers = rng.choice(
                n, size=min(hub_degree, n - 1), replace=False
            )
            followers = followers[followers != hub]
        extra_src.append(np.full(followers.size, hub, dtype=np.int64))
        extra_dst.append(followers.astype(np.int64))
    old_src = np.repeat(
        np.arange(base.n, dtype=np.int64), np.diff(base.indptr)
    )
    edges = np.stack(
        [
            np.concatenate([old_src] + extra_src),
            np.concatenate([base.indices] + extra_dst),
        ],
        axis=1,
    )
    return CSRGraph.from_edges(
        total_n, edges, name=name or f"ba-hub-{n}-{attach}"
    )
