"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``stats``     — structural statistics of a graph;
* ``kcore``     — decompose and print the coreness histogram + timings;
* ``subgraph``  — extract the maximum k-core subgraph;
* ``compare``   — run all algorithms on one graph (a Table-2 row);
* ``truss``     — k-truss decomposition / extraction;
* ``hierarchy`` — print the core hierarchy tree;
* ``suite``     — list the built-in benchmark suite;
* ``generate``  — build a synthetic graph and save it.

Graphs are referenced either by a suite name (``--suite-graph LJ-S``) or
by a file (``--input graph.txt|.adj|.npz``, format by extension).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import ALGORITHMS, run_on
from repro.core.parallel_kcore import ParallelKCore
from repro.core.hierarchy import core_hierarchy
from repro.core.subgraph import max_kcore_subgraph
from repro.core.truss import ktruss_subgraph, truss_decomposition
from repro.generators import suite as suite_mod
from repro.generators import (
    barabasi_albert,
    cube_3d,
    erdos_renyi,
    grid_2d,
    hcns,
    knn_graph,
    rmat,
    road_like,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.io import (
    load_adjacency,
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
)
from repro.graphs.properties import graph_stats
from repro.runtime.cost_model import nanos_to_millis
from repro.runtime.profiler import profile, render_report

__all__ = ["main", "build_parser"]

#: Generator name -> (callable, kwargs builder from argparse Namespace).
GENERATORS = {
    "grid": lambda args: grid_2d(args.size, args.size),
    "cube": lambda args: cube_3d(args.size, args.size, args.size),
    "ba": lambda args: barabasi_albert(args.n, args.attach, seed=args.seed),
    "rmat": lambda args: rmat(args.scale, args.edge_factor, seed=args.seed),
    "er": lambda args: erdos_renyi(args.n, args.avg_degree, seed=args.seed),
    "road": lambda args: road_like(args.n, seed=args.seed),
    "knn": lambda args: knn_graph(args.n, args.k, seed=args.seed),
    "hcns": lambda args: hcns(args.kmax, width=args.width),
}


def _load_graph(args: argparse.Namespace) -> CSRGraph:
    if getattr(args, "suite_graph", None):
        return suite_mod.load(args.suite_graph)
    path = getattr(args, "input", None)
    if not path:
        raise SystemExit("need --suite-graph NAME or --input PATH")
    if path.endswith(".npz"):
        return load_npz(path)
    if path.endswith(".adj"):
        return load_adjacency(path)
    return load_edge_list(path)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--suite-graph", help="name of a built-in suite graph (see 'suite')"
    )
    parser.add_argument(
        "--input", help="graph file (.txt edge list, .adj, or .npz)"
    )


def cmd_stats(args: argparse.Namespace) -> int:
    """Print structural statistics of the selected graph."""
    graph = _load_graph(args)
    stats = graph_stats(graph)
    print(stats.describe())
    print(f"  degree p99: {stats.degree_p99:.1f}")
    return 0


def cmd_kcore(args: argparse.Namespace) -> int:
    """Decompose the graph and print histogram, timings, profile."""
    graph = _load_graph(args)
    solver = ParallelKCore(
        sampling=not args.no_sampling,
        vgc=not args.no_vgc,
        buckets=args.buckets,
    )
    result = solver.decompose(graph)
    print(f"k_max = {result.kmax}, subrounds = {result.rho}")
    hist = result.coreness_histogram()
    for k in range(hist.size):
        if hist[k]:
            print(f"  coreness {k}: {hist[k]} vertices")
    t1 = nanos_to_millis(result.time_on(1))
    tp = nanos_to_millis(result.time_on(args.threads))
    print(
        f"simulated time: 1 thread = {t1:.3f} ms, "
        f"{args.threads} threads = {tp:.3f} ms ({t1 / tp:.1f}x)"
    )
    if args.profile:
        print(render_report(profile(result.metrics), title="profile:"))
    if args.output:
        np.savetxt(args.output, result.coreness, fmt="%d")
        print(f"coreness written to {args.output}")
    return 0


def cmd_subgraph(args: argparse.Namespace) -> int:
    """Extract and optionally save the maximum k-core subgraph."""
    graph = _load_graph(args)
    result = max_kcore_subgraph(graph, args.k)
    print(
        f"{args.k}-core: {result.size} vertices "
        f"({result.size / max(graph.n, 1):.1%} of the graph)"
    )
    if args.output and result.size:
        core = result.extract(graph)
        if args.output.endswith(".npz"):
            save_npz(core, args.output)
        else:
            save_edge_list(core, args.output)
        print(f"extracted subgraph written to {args.output}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run every algorithm on the graph (one Table-2-style row)."""
    graph = _load_graph(args)
    print(graph_stats(graph).describe())
    print(
        f"{'algorithm':<12s} {'t96 (ms)':>10s} {'t1 (ms)':>10s} "
        f"{'spd':>6s} {'rho':>6s}"
    )
    for algo in ALGORITHMS:
        record = run_on(algo, graph)
        print(
            f"{algo:<12s} {record.time_ms:>10.3f} {record.seq_ms:>10.3f} "
            f"{record.self_speedup:>6.1f} {record.rho:>6d}"
        )
    return 0


def cmd_truss(args: argparse.Namespace) -> int:
    """k-truss decomposition histogram, or one k-truss extraction."""
    graph = _load_graph(args)
    if args.k is not None:
        sub = ktruss_subgraph(graph, args.k)
        print(f"{args.k}-truss: {sub.num_edges} edges, "
              f"{int((sub.degrees > 0).sum())} non-isolated vertices")
        if args.output:
            if args.output.endswith(".npz"):
                save_npz(sub, args.output)
            else:
                save_edge_list(sub, args.output)
            print(f"written to {args.output}")
    else:
        _, trussness = truss_decomposition(graph)
        hist = np.bincount(trussness) if trussness.size else np.zeros(0)
        print("trussness histogram:")
        for k in range(hist.size):
            if hist[k]:
                print(f"  trussness {k}: {hist[k]} edges")
    return 0


def cmd_hierarchy(args: argparse.Namespace) -> int:
    """Print the core hierarchy tree of the largest components."""
    graph = _load_graph(args)
    roots = core_hierarchy(graph)
    print(f"core hierarchy: {len(roots)} root component(s)")

    def show(node, indent):
        print(f"{'  ' * indent}k={node.k}: {node.size} vertices")
        for child in sorted(node.children, key=lambda c: -c.size):
            show(child, indent + 1)

    for root in sorted(roots, key=lambda r: -r.size)[: args.top]:
        show(root, 1)
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    """List the built-in benchmark suite graphs."""
    print(f"{'name':<8s} {'family':<8s} {'dense':<6s} paper dataset")
    for spec in suite_mod.SUITE.values():
        print(
            f"{spec.name:<8s} {spec.family:<8s} "
            f"{'yes' if spec.dense else 'no':<6s} {spec.paper_name}"
        )
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Build a synthetic graph and save it to a file."""
    graph = GENERATORS[args.family](args)
    print(graph_stats(graph).describe())
    if args.output.endswith(".npz"):
        save_npz(graph, args.output)
    else:
        save_edge_list(graph, args.output)
    print(f"written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel k-core decomposition (SIGMOD 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics")
    _add_graph_arguments(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_kcore = sub.add_parser("kcore", help="k-core decomposition")
    _add_graph_arguments(p_kcore)
    p_kcore.add_argument("--no-sampling", action="store_true")
    p_kcore.add_argument("--no-vgc", action="store_true")
    p_kcore.add_argument(
        "--buckets", default="adaptive",
        choices=("1", "16", "hbs", "adaptive"),
    )
    p_kcore.add_argument("--threads", type=int, default=96)
    p_kcore.add_argument("--profile", action="store_true")
    p_kcore.add_argument("--output", help="write coreness to a text file")
    p_kcore.set_defaults(func=cmd_kcore)

    p_sub = sub.add_parser("subgraph", help="maximum k-core subgraph")
    _add_graph_arguments(p_sub)
    p_sub.add_argument("-k", type=int, required=True)
    p_sub.add_argument("--output", help="write the extracted subgraph")
    p_sub.set_defaults(func=cmd_subgraph)

    p_cmp = sub.add_parser("compare", help="run all algorithms")
    _add_graph_arguments(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_truss = sub.add_parser("truss", help="k-truss decomposition")
    _add_graph_arguments(p_truss)
    p_truss.add_argument("-k", type=int, help="extract one k-truss")
    p_truss.add_argument("--output", help="write the extracted truss")
    p_truss.set_defaults(func=cmd_truss)

    p_hier = sub.add_parser("hierarchy", help="core hierarchy tree")
    _add_graph_arguments(p_hier)
    p_hier.add_argument("--top", type=int, default=3,
                        help="show this many largest roots")
    p_hier.set_defaults(func=cmd_hierarchy)

    p_suite = sub.add_parser("suite", help="list built-in graphs")
    p_suite.set_defaults(func=cmd_suite)

    p_gen = sub.add_parser("generate", help="build a synthetic graph")
    p_gen.add_argument("family", choices=sorted(GENERATORS))
    p_gen.add_argument("--output", required=True)
    p_gen.add_argument("--n", type=int, default=10_000)
    p_gen.add_argument("--size", type=int, default=100)
    p_gen.add_argument("--attach", type=int, default=8)
    p_gen.add_argument("--scale", type=int, default=13)
    p_gen.add_argument("--edge-factor", type=int, default=16)
    p_gen.add_argument("--avg-degree", type=float, default=8.0)
    p_gen.add_argument("--k", type=int, default=5)
    p_gen.add_argument("--kmax", type=int, default=128)
    p_gen.add_argument("--width", type=int, default=1)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(func=cmd_generate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
