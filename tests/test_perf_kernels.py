"""Kernel equivalence: the vectorized/native peel kernels vs the reference.

The ``REPRO_KERNELS`` switch selects between three implementations of the
VGC task loop that must be *bit-exact*: identical coreness arrays and an
identical stable metrics ledger (work, span, contention, subrounds, RNG
consumption) on every graph family, with and without sampling.  These
tests run full decompositions under every mode and compare everything;
the regression goldens enforce the same property on the pinned matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import FrameworkConfig, decompose
from repro.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    hcns,
    knn_graph,
    power_law_with_hub,
    road_like,
)
from repro.perf import (
    AUTO,
    DEFAULT_KERNEL_THRESHOLD,
    KERNELS_ENV,
    NATIVE,
    REFERENCE,
    THRESHOLD_ENV,
    VECTORIZED,
    kernel_mode,
    kernel_threshold,
    native_available,
)
from repro.runtime.cost_model import DEFAULT_COST_MODEL

#: One randomized builder per generator family (seeded — the *pair* of
#: runs must see the identical graph, not two draws of it).
GRAPHS = {
    "er": lambda seed: erdos_renyi(240, 5.0, seed=seed),
    "hub": lambda seed: power_law_with_hub(
        300, 3, hub_count=2, hub_degree=80, seed=seed
    ),
    "ba": lambda seed: barabasi_albert(320, 5, seed=seed, attach_min=2),
    "grid": lambda seed: grid_2d(14 + seed % 5, 18),
    "road": lambda seed: road_like(400, seed=seed),
    "knn": lambda seed: knn_graph(260, 4, dim=2, clusters=5, seed=seed),
    "hcns": lambda seed: hcns(32 + 8 * (seed % 3)),
}

CONFIGS = {
    "vgc": FrameworkConfig(vgc=True),
    "vgc-sample": FrameworkConfig(vgc=True, sampling=True),
    "vgc-sample-hbs": FrameworkConfig(
        vgc=True, sampling=True, buckets="adaptive"
    ),
    "flat": FrameworkConfig(),
}

#: The non-reference modes under test; native only where it can build.
FAST_MODES = [VECTORIZED] + ([NATIVE] if native_available() else [])


def _run(monkeypatch, mode: str, family: str, seed: int, config_name: str):
    monkeypatch.setenv(KERNELS_ENV, mode)
    graph = GRAPHS[family](seed)
    result = decompose(graph, CONFIGS[config_name], DEFAULT_COST_MODEL)
    return (
        result.coreness,
        result.metrics.to_stable_dict(DEFAULT_COST_MODEL),
    )


@pytest.mark.parametrize("mode", FAST_MODES)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("family", sorted(GRAPHS))
def test_modes_bit_exact(monkeypatch, family, config_name, mode):
    for seed in (3, 104):
        core_f, metrics_f = _run(
            monkeypatch, mode, family, seed, config_name
        )
        core_r, metrics_r = _run(
            monkeypatch, REFERENCE, family, seed, config_name
        )
        assert np.array_equal(core_f, core_r), (family, config_name, seed)
        assert metrics_f == metrics_r, (family, config_name, seed)


@pytest.mark.parametrize("threshold", ["0", "7", "1000000"])
def test_threshold_invariance(monkeypatch, threshold):
    """The scalar/vectorized split point never changes the payload."""
    monkeypatch.setenv(THRESHOLD_ENV, threshold)
    core_t, metrics_t = _run(monkeypatch, VECTORIZED, "hub", 3, "vgc-sample")
    monkeypatch.delenv(THRESHOLD_ENV)
    core_d, metrics_d = _run(monkeypatch, VECTORIZED, "hub", 3, "vgc-sample")
    assert np.array_equal(core_t, core_d)
    assert metrics_t == metrics_d


def test_default_mode_resolves(monkeypatch):
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    expected = NATIVE if native_available() else VECTORIZED
    assert kernel_mode() == expected


def test_auto_mode_resolves(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, AUTO)
    assert kernel_mode() in (NATIVE, VECTORIZED)


def test_mode_env_roundtrip(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, " Reference ")
    assert kernel_mode() == REFERENCE


def test_unknown_mode_rejected(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "turbo")
    with pytest.raises(ValueError, match="REPRO_KERNELS"):
        kernel_mode()


def test_threshold_env(monkeypatch):
    monkeypatch.delenv(THRESHOLD_ENV, raising=False)
    assert kernel_threshold() == DEFAULT_KERNEL_THRESHOLD
    monkeypatch.setenv(THRESHOLD_ENV, "64")
    assert kernel_threshold() == 64
    monkeypatch.setenv(THRESHOLD_ENV, "-3")
    with pytest.raises(ValueError, match=THRESHOLD_ENV):
        kernel_threshold()
    monkeypatch.setenv(THRESHOLD_ENV, "many")
    with pytest.raises(ValueError, match=THRESHOLD_ENV):
        kernel_threshold()
