"""Kernel equivalence: the vectorized peel kernels vs the reference loops.

The ``REPRO_KERNELS`` switch selects between two implementations of the
VGC task loop that must be *bit-exact*: identical coreness arrays and an
identical stable metrics ledger (work, span, contention, subrounds, RNG
consumption) on every graph family, with and without sampling.  These
tests run full decompositions under both modes and compare everything;
the regression goldens enforce the same property on the pinned matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import FrameworkConfig, decompose
from repro.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    hcns,
    knn_graph,
    power_law_with_hub,
    road_like,
)
from repro.perf import KERNELS_ENV, REFERENCE, VECTORIZED, kernel_mode
from repro.runtime.cost_model import DEFAULT_COST_MODEL

#: One randomized builder per generator family (seeded — the *pair* of
#: runs must see the identical graph, not two draws of it).
GRAPHS = {
    "er": lambda seed: erdos_renyi(240, 5.0, seed=seed),
    "hub": lambda seed: power_law_with_hub(
        300, 3, hub_count=2, hub_degree=80, seed=seed
    ),
    "ba": lambda seed: barabasi_albert(320, 5, seed=seed, attach_min=2),
    "grid": lambda seed: grid_2d(14 + seed % 5, 18),
    "road": lambda seed: road_like(400, seed=seed),
    "knn": lambda seed: knn_graph(260, 4, dim=2, clusters=5, seed=seed),
    "hcns": lambda seed: hcns(32 + 8 * (seed % 3)),
}

CONFIGS = {
    "vgc": FrameworkConfig(vgc=True),
    "vgc-sample": FrameworkConfig(vgc=True, sampling=True),
    "vgc-sample-hbs": FrameworkConfig(
        vgc=True, sampling=True, buckets="adaptive"
    ),
    "flat": FrameworkConfig(),
}


def _run(monkeypatch, mode: str, family: str, seed: int, config_name: str):
    monkeypatch.setenv(KERNELS_ENV, mode)
    graph = GRAPHS[family](seed)
    result = decompose(graph, CONFIGS[config_name], DEFAULT_COST_MODEL)
    return (
        result.coreness,
        result.metrics.to_stable_dict(DEFAULT_COST_MODEL),
    )


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("family", sorted(GRAPHS))
def test_modes_bit_exact(monkeypatch, family, config_name):
    for seed in (3, 104):
        core_v, metrics_v = _run(
            monkeypatch, VECTORIZED, family, seed, config_name
        )
        core_r, metrics_r = _run(
            monkeypatch, REFERENCE, family, seed, config_name
        )
        assert np.array_equal(core_v, core_r), (family, config_name, seed)
        assert metrics_v == metrics_r, (family, config_name, seed)


def test_default_mode_is_vectorized(monkeypatch):
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    assert kernel_mode() == VECTORIZED


def test_mode_env_roundtrip(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, " Reference ")
    assert kernel_mode() == REFERENCE


def test_unknown_mode_rejected(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "turbo")
    with pytest.raises(ValueError, match="REPRO_KERNELS"):
        kernel_mode()
