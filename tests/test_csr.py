"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, InvalidGraphError
from repro.graphs.csr import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.m == 6  # symmetrized arcs
        assert g.num_edges == 3

    def test_symmetrization(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]

    def test_no_symmetrize_keeps_arcs(self):
        g = CSRGraph.from_edges(3, [(0, 1)], symmetrize=False)
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == []

    def test_self_loops_removed(self):
        g = CSRGraph.from_edges(3, [(0, 0), (1, 1), (0, 1)])
        assert g.num_edges == 1

    def test_duplicate_edges_removed(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_neighbors_sorted(self):
        g = CSRGraph.from_edges(5, [(0, 4), (0, 2), (0, 3), (0, 1)])
        assert list(g.neighbors(0)) == [1, 2, 3, 4]

    def test_empty_graph(self):
        g = CSRGraph.from_edges(5, [])
        assert g.n == 5
        assert g.m == 0
        assert g.max_degree == 0

    def test_zero_vertices(self):
        g = CSRGraph.from_edges(0, [])
        assert g.n == 0
        assert g.average_degree == 0.0

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(-1, [])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(3, [(0, 3)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(3, np.array([[0, 1, 2]]))

    def test_direct_constructor_validates(self):
        with pytest.raises(InvalidGraphError):
            CSRGraph(np.array([0, 2]), np.array([5]))  # index out of range
        with pytest.raises(InvalidGraphError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))  # bad start
        with pytest.raises(InvalidGraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]))  # decreasing


class TestAccessors:
    def test_degrees(self, triangle):
        assert list(triangle.degrees) == [2, 2, 2]

    def test_degree_single(self, triangle):
        assert triangle.degree(1) == 2

    def test_max_and_average_degree(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree == 3
        assert g.average_degree == pytest.approx(6 / 4)

    def test_repr_contains_stats(self, triangle):
        assert "n=3" in repr(triangle)
        assert "m=6" in repr(triangle)

    def test_equality(self, triangle):
        other = CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert triangle == other
        different = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        assert triangle != different

    def test_equality_with_other_type(self, triangle):
        assert triangle.__eq__(42) is NotImplemented


class TestGatherNeighbors:
    def test_matches_per_vertex_concat(self, small_er):
        frontier = np.array([3, 17, 42, 99], dtype=np.int64)
        expected = np.concatenate(
            [small_er.neighbors(int(v)) for v in frontier]
        )
        got = small_er.gather_neighbors(frontier)
        assert np.array_equal(got, expected)

    def test_empty_frontier(self, small_er):
        assert small_er.gather_neighbors(np.array([], dtype=np.int64)).size == 0

    def test_isolated_vertices(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        got = g.gather_neighbors(np.array([2, 3], dtype=np.int64))
        assert got.size == 0

    def test_repeated_frontier_vertices(self, triangle):
        got = triangle.gather_neighbors(np.array([0, 0], dtype=np.int64))
        assert sorted(got.tolist()) == [1, 1, 2, 2]

    def test_frontier_edge_count(self, small_er):
        frontier = np.arange(10, dtype=np.int64)
        assert small_er.frontier_edge_count(frontier) == sum(
            small_er.degree(v) for v in range(10)
        )

    def test_frontier_edge_count_empty(self, small_er):
        assert small_er.frontier_edge_count(np.array([], dtype=np.int64)) == 0


class TestInducedSubgraph:
    def test_triangle_minus_vertex(self, triangle):
        sub = triangle.induced_subgraph(np.array([0, 1]))
        assert sub.n == 2
        assert sub.num_edges == 1

    def test_keeps_internal_edges_only(self):
        g = CSRGraph.from_edges(
            5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
        )
        sub = g.induced_subgraph(np.array([0, 1, 2]))
        assert sub.n == 3
        assert sub.num_edges == 2  # (0,1) and (1,2); boundary edges cut

    def test_empty_selection(self, triangle):
        sub = triangle.induced_subgraph(np.array([], dtype=np.int64))
        assert sub.n == 0

    def test_full_selection_is_identity(self, small_er):
        sub = small_er.induced_subgraph(np.arange(small_er.n))
        assert sub.n == small_er.n
        assert sub.num_edges == small_er.num_edges

    def test_duplicate_ids_deduplicated(self, triangle):
        sub = triangle.induced_subgraph(np.array([0, 0, 1]))
        assert sub.n == 2
