"""The repro.lint static analyzer: rules, suppressions, runner and CLI.

Every rule is exercised with at least one triggering and one clean
fixture; the suite ends with the self-check that the linter runs clean
over ``src/repro`` itself — the invariant CI enforces.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import all_rules, get_rule, lint_paths, lint_source
from repro.lint.cli import main
from repro.lint.reporters import format_json, format_text
from repro.lint.suppress import parse_suppressions

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: Default fixture path: under repro/core/ so every rule (R004 is scoped
#: to core modules) sees the snippet as algorithm code.
CORE_PATH = "src/repro/core/snippet.py"


def lint(source: str, path: str = CORE_PATH, select=None):
    return lint_source(textwrap.dedent(source), path=path, select=select)


def rule_ids(findings) -> list[str]:
    return [finding.rule_id for finding in findings]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_nine_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
            "R008", "R009",
        ]

    def test_rules_have_names_and_summaries(self):
        for rule in all_rules():
            assert rule.name
            assert rule.summary

    def test_get_rule(self):
        assert get_rule("R001").name == "charge-coverage"
        with pytest.raises(KeyError):
            get_rule("R999")


# ----------------------------------------------------------------------
# R001 charge-coverage
# ----------------------------------------------------------------------
class TestR001ChargeCoverage:
    def test_uncharged_numpy_kernel_is_flagged(self):
        findings = lint(
            """
            import numpy as np

            def kernel(graph, runtime):
                degrees = np.diff(graph.indptr)
                return degrees * 2
            """
        )
        assert rule_ids(findings) == ["R001"]
        assert "kernel" in findings[0].message

    def test_charged_kernel_is_clean(self):
        findings = lint(
            """
            import numpy as np

            def kernel(graph, runtime):
                degrees = np.diff(graph.indptr)
                runtime.parallel_for(
                    runtime.model.scan_op, count=degrees.size, tag="deg"
                )
                return degrees
            """
        )
        assert findings == []

    def test_conditional_charge_is_clean(self):
        findings = lint(
            """
            import numpy as np

            def kernel(values, runtime=None):
                out = np.cumsum(values)
                if runtime is not None:
                    runtime.sequential(runtime.model.scan_op, tag="scan")
                return out
            """
        )
        assert findings == []

    def test_forwarding_runtime_to_callee_is_clean(self):
        findings = lint(
            """
            import numpy as np

            def driver(graph, runtime):
                degrees = np.diff(graph.indptr)
                return peel(degrees, runtime=runtime)
            """
        )
        assert findings == []

    def test_storing_runtime_on_charging_class_is_clean(self):
        findings = lint(
            """
            import numpy as np

            class Bag:
                def build(self, values, runtime):
                    self.runtime = runtime
                    self.slots = np.zeros(values.size)

                def drain(self):
                    self.runtime.sequential(float(self.slots.size), tag="d")
            """
        )
        assert findings == []

    def test_storing_runtime_on_non_charging_class_is_flagged(self):
        # v1 treated *any* store of the runtime as an escape hatch; the
        # call-graph engine sees that no method of Bag ever charges, so
        # the stored runtime can never account for the numpy work.
        findings = lint(
            """
            import numpy as np

            class Bag:
                def build(self, values, runtime):
                    self.runtime = runtime
                    self.slots = np.zeros(values.size)
            """
        )
        assert rule_ids(findings) == ["R001"]

    def test_forwarding_to_resolved_non_charging_callee_is_flagged(self):
        # The v1 false negative the engine closes: the runtime is
        # forwarded, but to a *resolved* callee that never charges.
        findings = lint(
            """
            import numpy as np

            def collect(runtime, values):
                return values.sum()

            def driver(graph, runtime):
                degrees = np.diff(graph.indptr)
                collect(runtime, degrees)
                return degrees
            """
        )
        assert rule_ids(findings) == ["R001"]
        assert "driver" in findings[0].message

    def test_annotation_marks_runtime_parameter(self):
        findings = lint(
            """
            import numpy as np

            def kernel(values, sim: "SimRuntime"):
                return np.cumsum(values)
            """
        )
        assert rule_ids(findings) == ["R001"]

    def test_no_numpy_work_is_clean(self):
        findings = lint(
            """
            def describe(runtime):
                return f"{runtime.model.n_cores} cores"
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# R002 untagged-charge
# ----------------------------------------------------------------------
class TestR002UntaggedCharge:
    def test_missing_tag_is_flagged(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.parallel_for(runtime.model.scan_op, count=n)
            """
        )
        assert rule_ids(findings) == ["R002"]
        assert "no tag=" in findings[0].message

    def test_positional_tag_is_flagged(self):
        findings = lint(
            """
            def f(runtime):
                runtime.sequential(runtime.model.scan_op, "scan")
            """
        )
        assert rule_ids(findings) == ["R002"]
        assert "positionally" in findings[0].message

    def test_empty_tag_is_flagged(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.parallel_for(runtime.model.scan_op, count=n, tag="")
            """
        )
        assert rule_ids(findings) == ["R002"]

    def test_every_charge_method_is_covered(self):
        findings = lint(
            """
            def f(runtime, costs, counts, works):
                runtime.parallel_for(costs)
                runtime.parallel_update(costs, counts)
                runtime.sequential(1.0)
                runtime.barrier_only(2)
                runtime.imbalanced_step(works)
            """
        )
        assert rule_ids(findings) == ["R002"] * 5

    def test_keyword_tags_are_clean(self):
        findings = lint(
            """
            def f(runtime, costs, counts, label):
                runtime.parallel_for(costs, tag="gather")
                runtime.parallel_update(costs, counts, tag=label)
                runtime.barrier_only(1, tag="sync")
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# R003 determinism
# ----------------------------------------------------------------------
class TestR003Determinism:
    def test_wall_clock_read_is_flagged(self):
        findings = lint(
            """
            import time

            def f():
                return time.perf_counter()
            """,
            select=["R003"],
        )
        assert rule_ids(findings) == ["R003"]

    def test_from_import_clock_is_flagged(self):
        findings = lint(
            """
            from time import perf_counter as clock

            def f():
                return clock()
            """,
            select=["R003"],
        )
        assert rule_ids(findings) == ["R003"]

    def test_legacy_np_random_is_flagged(self):
        findings = lint(
            """
            import numpy as np

            def f():
                np.random.seed(0)
                return np.random.rand(4)
            """
        )
        assert rule_ids(findings) == ["R003", "R003"]

    def test_unseeded_default_rng_is_flagged(self):
        findings = lint(
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """
        )
        assert rule_ids(findings) == ["R003"]
        assert "unseeded" in findings[0].message

    def test_random_module_import_is_flagged(self):
        assert rule_ids(lint("import random")) == ["R003"]
        assert rule_ids(lint("from random import shuffle")) == ["R003"]

    def test_seeded_generator_is_clean(self):
        findings = lint(
            """
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.random(8)
            """
        )
        assert findings == []

    def test_benchmarks_are_exempt(self):
        findings = lint(
            """
            import time

            def f():
                return time.perf_counter()
            """,
            path="benchmarks/bench_timer.py",
        )
        assert findings == []

    def test_env_read_in_cache_key_function_is_flagged(self):
        findings = lint(
            """
            import os

            def graph_cache_key(generator, params):
                return hash((os.environ.get("HOST"), generator))
            """,
            select=["R003"],
        )
        assert rule_ids(findings) == ["R003"]
        assert "cache-key" in findings[0].message

    def test_getenv_in_key_fields_is_flagged(self):
        findings = lint(
            """
            import os

            def key_fields(self):
                return {"mode": os.getenv("REPRO_KERNELS")}
            """,
            select=["R003"],
        )
        assert rule_ids(findings) == ["R003"]

    def test_env_read_outside_key_function_is_clean(self):
        findings = lint(
            """
            import os

            def cache_dir():
                return os.environ.get("REPRO_GRAPH_CACHE")
            """,
            select=["R003"],
        )
        assert findings == []

    def test_pure_key_function_is_clean(self):
        findings = lint(
            """
            import hashlib, json

            def graph_cache_key(generator, params):
                blob = json.dumps([generator, sorted(params.items())])
                return hashlib.sha256(blob.encode()).hexdigest()
            """,
            select=["R003"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R004 simulated-race
# ----------------------------------------------------------------------
RACY_PEEL = """
    import numpy as np
    from repro.runtime.atomics import batch_decrement

    def peel(dtilde, frontier, runtime, k):
        outcome = batch_decrement(dtilde, frontier, k)
        dtilde[frontier] -= 1
        runtime.parallel_update(
            1.0, outcome.counts, count=1, tag="peel"
        )
        return outcome.crossed
"""


class TestR004SimulatedRace:
    def test_raw_write_to_batch_decremented_array_is_flagged(self):
        findings = lint(RACY_PEEL, select=["R004"])
        assert rule_ids(findings) == ["R004"]
        assert "dtilde" in findings[0].message

    def test_inplace_ufunc_on_contended_array_is_flagged(self):
        findings = lint(
            """
            import numpy as np
            from repro.runtime.atomics import batch_decrement

            def peel(dtilde, frontier, k):
                outcome = batch_decrement(dtilde, frontier, k)
                np.subtract.at(dtilde, frontier, 1)
                return outcome.crossed
            """,
            select=["R004"],
        )
        assert rule_ids(findings) == ["R004"]

    def test_write_to_contention_counted_array_is_flagged(self):
        findings = lint(
            """
            def peel(runtime, shared, costs, idx):
                runtime.parallel_update(costs, shared, tag="peel")
                shared[idx] = 0
            """,
            select=["R004"],
        )
        assert rule_ids(findings) == ["R004"]

    def test_write_to_unrelated_array_is_clean(self):
        findings = lint(
            """
            from repro.runtime.atomics import batch_decrement

            def peel(dtilde, coreness, frontier, k):
                outcome = batch_decrement(dtilde, frontier, k)
                coreness[frontier] = k
                return outcome.crossed
            """,
            select=["R004"],
        )
        assert findings == []

    def test_rule_is_scoped_to_core_modules(self):
        findings = lint(
            RACY_PEEL, path="src/repro/runtime/snippet.py", select=["R004"]
        )
        assert findings == []

    def test_per_task_cost_arrays_are_not_contended(self):
        findings = lint(
            """
            def peel(runtime, task_costs, counts, i, cost):
                task_costs[i] = cost
                runtime.parallel_update(task_costs, counts, tag="peel")
            """,
            select=["R004"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R005 magic-cost-constant
# ----------------------------------------------------------------------
class TestR005MagicCostConstant:
    def test_literal_cost_is_flagged(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.sequential(5.0 * n, tag="init")
            """
        )
        assert rule_ids(findings) == ["R005"]
        assert "5" in findings[0].message

    def test_model_field_cost_is_clean(self):
        findings = lint(
            """
            def f(runtime, model, n):
                runtime.parallel_for(model.scan_op, count=n, tag="scan")
                runtime.sequential(2 * model.edge_op, tag="edges")
            """
        )
        assert findings == []

    def test_neutral_literals_are_clean(self):
        findings = lint(
            """
            import numpy as np

            def f(runtime, counts, work):
                runtime.parallel_update(0.0, counts, count=1, tag="inc")
                runtime.parallel_for(
                    np.array([max(work, 1.0)]), tag="round"
                )
            """
        )
        assert findings == []

    def test_count_literals_are_not_costs(self):
        findings = lint(
            """
            def f(runtime, model):
                runtime.parallel_for(model.scan_op, count=4096, tag="scan")
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# R006 trace-side-effect
# ----------------------------------------------------------------------
class TestR006TraceSideEffect:
    def test_clock_read_in_repro_package_is_flagged(self):
        findings = lint(
            """
            import time

            def f():
                return time.monotonic()
            """,
            select=["R006"],
        )
        assert rule_ids(findings) == ["R006"]
        assert "wallclock" in findings[0].message

    def test_bench_wallclock_module_is_exempt(self):
        findings = lint(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            path="src/repro/bench/wallclock.py",
            select=["R006"],
        )
        assert findings == []

    def test_charge_inside_trace_package_is_flagged(self):
        findings = lint(
            """
            def export(runtime):
                runtime.parallel_for(1.0, count=1, tag="oops")
            """,
            path="src/repro/trace/export.py",
            select=["R006"],
        )
        assert rule_ids(findings) == ["R006"]
        assert "charge" in findings[0].message

    def test_randomness_inside_trace_package_is_flagged(self):
        findings = lint(
            """
            import numpy as np

            def jitter():
                return np.random.default_rng(0).random()
            """,
            path="src/repro/trace/export.py",
            select=["R006"],
        )
        assert findings and all(f.rule_id == "R006" for f in findings)

    def test_metrics_mutation_inside_trace_package_is_flagged(self):
        findings = lint(
            """
            def poke(runtime):
                runtime.metrics.restarts = 1
            """,
            path="src/repro/trace/export.py",
            select=["R006"],
        )
        assert rule_ids(findings) == ["R006"]
        assert "metrics" in findings[0].message

    def test_unguarded_tracer_hook_is_flagged(self):
        findings = lint(
            """
            def f(self, n):
                self.tracer.on_step("seq", 1.0, 1.0, 0, "t")
            """,
            select=["R006"],
        )
        assert rule_ids(findings) == ["R006"]
        assert "is not None" in findings[0].message

    def test_guarded_tracer_hook_is_clean(self):
        findings = lint(
            """
            def f(self, n):
                if self.tracer is not None:
                    self.tracer.on_step("seq", 1.0, 1.0, 0, "t")
            """,
            select=["R006"],
        )
        assert findings == []

    def test_guard_on_wrong_name_does_not_count(self):
        findings = lint(
            """
            def f(self, other):
                if other is not None:
                    self.tracer.instant("x")
            """,
            select=["R006"],
        )
        assert rule_ids(findings) == ["R006"]

    def test_else_branch_of_guard_is_still_flagged(self):
        findings = lint(
            """
            def f(tracer):
                if tracer is not None:
                    pass
                else:
                    tracer.instant("x")
            """,
            select=["R006"],
        )
        assert rule_ids(findings) == ["R006"]

    def test_constructed_tracer_is_exempt(self):
        findings = lint(
            """
            from repro.trace import Tracer

            def f():
                tracer = Tracer()
                tracer.instant("x")
                return tracer
            """,
            path="tests/snippet.py",
            select=["R006"],
        )
        assert findings == []

    def test_reading_tracer_state_is_clean(self):
        findings = lint(
            """
            def f(self):
                return self.tracer.telemetry()
            """,
            select=["R006"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R008 metrics-side-effect
# ----------------------------------------------------------------------
class TestR008MetricsSideEffect:
    def test_unguarded_registry_hook_is_flagged(self):
        findings = lint(
            """
            def f(self):
                self.registry.inc("runtime.rounds")
            """,
            select=["R008"],
        )
        assert rule_ids(findings) == ["R008"]
        assert "is not None" in findings[0].message

    def test_guarded_registry_hook_is_clean(self):
        findings = lint(
            """
            def f(self):
                registry = self.registry
                if registry is not None:
                    registry.inc("runtime.rounds")
                    registry.observe("x", 1.0)
            """,
            select=["R008"],
        )
        assert findings == []

    def test_guard_on_wrong_name_does_not_count(self):
        findings = lint(
            """
            def f(self, other):
                if other is not None:
                    self.registry.observe("x", 1.0)
            """,
            select=["R008"],
        )
        assert rule_ids(findings) == ["R008"]

    def test_else_branch_of_guard_is_still_flagged(self):
        findings = lint(
            """
            def f(registry):
                if registry is not None:
                    pass
                else:
                    registry.set_gauge("x", 1.0)
            """,
            select=["R008"],
        )
        assert rule_ids(findings) == ["R008"]

    def test_constructed_registry_is_exempt(self):
        findings = lint(
            """
            from repro.obs import MetricsRegistry

            def f():
                registry = MetricsRegistry("t")
                registry.inc("x")
                return registry
            """,
            path="tests/snippet.py",
            select=["R008"],
        )
        assert findings == []

    def test_charge_inside_obs_package_is_flagged(self):
        findings = lint(
            """
            def export(runtime):
                runtime.sequential(3.0, tag="oops")
            """,
            path="src/repro/obs/export.py",
            select=["R008"],
        )
        assert rule_ids(findings) == ["R008"]
        assert "charge" in findings[0].message

    def test_randomness_inside_obs_package_is_flagged(self):
        findings = lint(
            """
            import numpy as np

            def jitter():
                return np.random.default_rng(0).random()
            """,
            path="src/repro/obs/export.py",
            select=["R008"],
        )
        assert findings and all(f.rule_id == "R008" for f in findings)

    def test_metrics_mutation_inside_obs_package_is_flagged(self):
        findings = lint(
            """
            def poke(runtime):
                runtime.metrics.restarts = 1
            """,
            path="src/repro/obs/export.py",
            select=["R008"],
        )
        assert rule_ids(findings) == ["R008"]
        assert "metrics" in findings[0].message

    def test_reading_registry_state_is_clean(self):
        findings = lint(
            """
            def f(self):
                return self.registry.counter_values("cache.")
            """,
            select=["R008"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R009 shard-determinism
# ----------------------------------------------------------------------
SHARD_PATH = "src/repro/shard/snippet.py"


class TestR009ShardDeterminism:
    def test_charge_inside_as_completed_loop_is_flagged(self):
        findings = lint(
            """
            from concurrent.futures import as_completed

            def merge(runtime, futures, model):
                for future in as_completed(futures):
                    ids, costs = future.result()
                    runtime.parallel_for(model.scan_op, count=len(ids),
                                         barriers=1, tag="shard_exchange")
            """,
            path=SHARD_PATH,
            select=["R009"],
        )
        assert rule_ids(findings) == ["R009"]
        assert "completion order" in findings[0].message

    def test_registry_hook_inside_imap_unordered_is_flagged(self):
        findings = lint(
            """
            def merge(pool, registry, chunks):
                for reply in pool.imap_unordered(work, chunks):
                    if registry is not None:
                        registry.inc("shard.deltas", reply.count)
            """,
            path=SHARD_PATH,
            select=["R009"],
        )
        assert rule_ids(findings) == ["R009"]

    def test_wrapped_unordered_source_is_flagged(self):
        findings = lint(
            """
            from concurrent.futures import as_completed

            def merge(runtime, futures, model):
                for index, future in enumerate(as_completed(futures)):
                    runtime.sequential(model.scan_op, tag="shard_merge")
            """,
            path=SHARD_PATH,
            select=["R009"],
        )
        assert rule_ids(findings) == ["R009"]

    def test_collect_then_sorted_fold_is_clean(self):
        findings = lint(
            """
            from concurrent.futures import as_completed

            def merge(runtime, futures, model):
                replies = {}
                for future in as_completed(futures):
                    shard, ids = future.result()
                    replies[shard] = ids
                for shard in sorted(replies):
                    runtime.parallel_for(model.scan_op,
                                         count=len(replies[shard]),
                                         barriers=1, tag="shard_exchange")
            """,
            path=SHARD_PATH,
            select=["R009"],
        )
        assert findings == []

    def test_fixed_order_loop_is_clean(self):
        findings = lint(
            """
            def merge(runtime, workers, model):
                for worker in workers:
                    reply = worker.recv()
                    runtime.sequential(model.scan_op, tag="shard_merge")
            """,
            path=SHARD_PATH,
            select=["R009"],
        )
        assert findings == []

    def test_rule_is_scoped_to_the_shard_package(self):
        findings = lint(
            """
            from concurrent.futures import as_completed

            def merge(runtime, futures, model):
                for future in as_completed(futures):
                    runtime.sequential(model.scan_op, tag="merge")
            """,
            path=CORE_PATH,
            select=["R009"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_comment_suppresses_its_line(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.sequential(5.0 * n, tag="x")  # lint: disable=R005
            """
        )
        assert findings == []

    def test_standalone_comment_suppresses_next_line(self):
        findings = lint(
            """
            def f(runtime, n):
                # lint: disable=R005
                runtime.sequential(5.0 * n, tag="x")
            """
        )
        assert findings == []

    def test_disable_all(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.sequential(5.0 * n)  # lint: disable=all
            """
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.sequential(5.0 * n, tag="x")  # lint: disable=R001
            """
        )
        assert rule_ids(findings) == ["R005"]

    def test_multiple_ids_in_one_directive(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.sequential(5.0 * n)  # lint: disable=R002, R005
            """
        )
        assert findings == []

    def test_parse_suppressions_shape(self):
        table = parse_suppressions(
            "x = 1  # lint: disable=R001\n# lint: disable=R002\ny = 2\n"
        )
        assert table[1] == frozenset({"R001"})
        assert "R002" in table[3]


# ----------------------------------------------------------------------
# Runner, reporters, CLI
# ----------------------------------------------------------------------
class TestRunnerAndCli:
    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(
            "def f(runtime, n):\n"
            "    runtime.sequential(7.0, tag='x')\n",
            encoding="utf-8",
        )
        (package / "good.py").write_text("x = 1\n", encoding="utf-8")
        findings = lint_paths([tmp_path])
        assert rule_ids(findings) == ["R005"]

    def test_select_filters_rules(self):
        source = """
            def f(runtime, n):
                runtime.sequential(5.0 * n)
        """
        assert rule_ids(lint(source)) == ["R002", "R005"]
        assert rule_ids(lint(source, select=["R002"])) == ["R002"]

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="R999"):
            lint("x = 1", select=["R999"])

    def test_syntax_error_becomes_e000(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == ["E000"]

    def test_text_reporter_format(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.sequential(5.0 * n, tag="x")
            """
        )
        text = format_text(findings)
        assert f"{CORE_PATH}:3:" in text
        assert text.endswith("1 finding")

    def test_json_reporter_round_trips(self):
        findings = lint(
            """
            def f(runtime, n):
                runtime.sequential(5.0 * n, tag="x")
            """
        )
        payload = json.loads(format_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "R005"

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        good = tmp_path / "good.py"
        good.write_text("x = 1\n", encoding="utf-8")

        assert main([str(bad)]) == 1
        assert "R003" in capsys.readouterr().out
        assert main([str(good)]) == 0
        assert main(["--select", "R999", str(good)]) == 2
        assert main([str(tmp_path / "no_such_dir")]) == 2
        assert main(["--list-rules"]) == 0
        assert "R004 simulated-race" in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        assert main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_module_entry_point(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(clean)],
            capture_output=True,
            text=True,
            cwd=ROOT,
            env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "0 findings" in proc.stdout


# ----------------------------------------------------------------------
# The acceptance criterion: the codebase itself lints clean
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_root_has_zero_unsuppressed_findings(self):
        roots = [
            ROOT / name
            for name in ("tests", "benchmarks", "examples", "tools")
            if (ROOT / name).exists()
        ]
        findings = lint_paths([SRC, *roots])
        assert findings == [], "\n".join(f.render() for f in findings)
