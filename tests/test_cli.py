"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.generators import erdos_renyi
from repro.graphs.io import save_edge_list, save_npz


@pytest.fixture
def graph_file(tmp_path, small_er):
    path = tmp_path / "g.txt"
    save_edge_list(small_er, path)
    return str(path)


class TestStats:
    def test_suite_graph(self, capsys):
        assert main(["stats", "--suite-graph", "AF-S"]) == 0
        out = capsys.readouterr().out
        assert "AF-S" in out and "sparse" in out

    def test_input_file(self, graph_file, capsys):
        assert main(["stats", "--input", graph_file]) == 0
        assert "n=200" in capsys.readouterr().out

    def test_missing_graph_argument(self):
        with pytest.raises(SystemExit):
            main(["stats"])

    def test_unknown_suite_graph(self):
        with pytest.raises(KeyError):
            main(["stats", "--suite-graph", "NOPE"])


class TestKcore:
    def test_basic(self, graph_file, capsys):
        assert main(["kcore", "--input", graph_file]) == 0
        out = capsys.readouterr().out
        assert "k_max" in out
        assert "simulated time" in out

    def test_flags(self, graph_file, capsys):
        assert (
            main(
                [
                    "kcore", "--input", graph_file,
                    "--no-sampling", "--no-vgc", "--buckets", "1",
                    "--threads", "8",
                ]
            )
            == 0
        )
        assert "8 threads" in capsys.readouterr().out

    def test_profile_flag(self, graph_file, capsys):
        assert main(["kcore", "--input", graph_file, "--profile"]) == 0
        assert "parallelism" in capsys.readouterr().out

    def test_output_file(self, graph_file, tmp_path, capsys, small_er):
        out_path = tmp_path / "coreness.txt"
        assert (
            main(
                ["kcore", "--input", graph_file, "--output", str(out_path)]
            )
            == 0
        )
        from repro.core.verify import reference_coreness

        written = np.loadtxt(out_path, dtype=np.int64)
        assert np.array_equal(written, reference_coreness(small_er))


class TestSubgraph:
    def test_extract(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "core.txt"
        assert (
            main(
                [
                    "subgraph", "--input", graph_file,
                    "-k", "2", "--output", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2-core" in out
        assert out_path.exists()

    def test_npz_output(self, graph_file, tmp_path):
        out_path = tmp_path / "core.npz"
        assert (
            main(
                [
                    "subgraph", "--input", graph_file,
                    "-k", "2", "--output", str(out_path),
                ]
            )
            == 0
        )
        from repro.graphs.io import load_npz

        core = load_npz(out_path)
        assert core.degrees.min() >= 2


class TestOtherCommands:
    def test_compare(self, capsys):
        assert main(["compare", "--suite-graph", "GL5-S"]) == 0
        out = capsys.readouterr().out
        for algo in ("ours", "julienne", "park", "pkc", "bz"):
            assert algo in out

    def test_suite_listing(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "LJ-S" in out and "GRID" in out

    @pytest.mark.parametrize(
        "family,extra",
        [
            ("grid", ["--size", "10"]),
            ("cube", ["--size", "5"]),
            ("er", ["--n", "100", "--avg-degree", "4"]),
            ("ba", ["--n", "100", "--attach", "3"]),
            ("rmat", ["--scale", "7", "--edge-factor", "4"]),
            ("road", ["--n", "400"]),
            ("knn", ["--n", "200", "--k", "3"]),
            ("hcns", ["--kmax", "10"]),
        ],
    )
    def test_generate(self, tmp_path, capsys, family, extra):
        out_path = tmp_path / f"{family}.txt"
        assert (
            main(["generate", family, "--output", str(out_path)] + extra)
            == 0
        )
        assert out_path.exists()

    def test_generate_npz(self, tmp_path):
        out_path = tmp_path / "g.npz"
        assert (
            main(
                ["generate", "grid", "--size", "6",
                 "--output", str(out_path)]
            )
            == 0
        )
        from repro.graphs.io import load_npz

        assert load_npz(out_path).n == 36


class TestTrussAndHierarchy:
    def test_truss_histogram(self, graph_file, capsys):
        assert main(["truss", "--input", graph_file]) == 0
        assert "trussness histogram" in capsys.readouterr().out

    def test_truss_extract(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "truss.txt"
        assert (
            main(
                ["truss", "--input", graph_file, "-k", "3",
                 "--output", str(out_path)]
            )
            == 0
        )
        assert "3-truss" in capsys.readouterr().out
        assert out_path.exists()

    def test_hierarchy(self, graph_file, capsys):
        assert main(["hierarchy", "--input", graph_file]) == 0
        out = capsys.readouterr().out
        assert "core hierarchy" in out
        assert "k=" in out


class TestBucketChoices:
    @pytest.mark.parametrize("buckets", ["1", "16", "hbs", "adaptive"])
    def test_kcore_with_every_bucket_strategy(
        self, graph_file, capsys, buckets
    ):
        assert (
            main(["kcore", "--input", graph_file, "--buckets", buckets])
            == 0
        )
        assert "k_max" in capsys.readouterr().out
