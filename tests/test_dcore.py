"""Tests for the directed (k, l)-core extension."""

import numpy as np
import pytest

from repro.core.dcore import dcore_in_decomposition, dcore_subgraph
from repro.errors import GraphFormatError
from repro.graphs.digraph import DirectedCSRGraph, random_digraph


def directed_cycle(n: int) -> DirectedCSRGraph:
    edges = [(i, (i + 1) % n) for i in range(n)]
    return DirectedCSRGraph(n, edges)


def complete_digraph(n: int) -> DirectedCSRGraph:
    edges = [(u, v) for u in range(n) for v in range(n) if u != v]
    return DirectedCSRGraph(n, edges)


class TestDirectedGraph:
    def test_construction(self):
        g = DirectedCSRGraph(3, [(0, 1), (1, 2)])
        assert g.m == 2
        assert list(g.out_neighbors(0)) == [1]
        assert list(g.in_neighbors(1)) == [0]
        assert list(g.in_neighbors(0)) == []

    def test_self_loops_and_duplicates_removed(self):
        g = DirectedCSRGraph(3, [(0, 0), (0, 1), (0, 1)])
        assert g.m == 1

    def test_degrees(self):
        g = DirectedCSRGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert list(g.out_degrees) == [2, 1, 0]
        assert list(g.in_degrees) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(GraphFormatError):
            DirectedCSRGraph(-1, [])
        with pytest.raises(GraphFormatError):
            DirectedCSRGraph(2, [(0, 5)])

    def test_as_undirected(self):
        g = DirectedCSRGraph(3, [(0, 1), (1, 0), (1, 2)])
        und = g.as_undirected()
        assert und.num_edges == 2  # (0,1) merged, (1,2)

    def test_random_digraph_size(self):
        g = random_digraph(500, 4.0, seed=1)
        assert g.n == 500
        assert 0.8 * 2000 <= g.m <= 2000


class TestDCoreSubgraph:
    def test_directed_cycle_is_11_core(self):
        g = directed_cycle(6)
        assert dcore_subgraph(g, 1, 1).all()
        assert not dcore_subgraph(g, 2, 1).any()
        assert not dcore_subgraph(g, 1, 2).any()

    def test_complete_digraph(self):
        g = complete_digraph(5)
        assert dcore_subgraph(g, 4, 4).all()
        assert not dcore_subgraph(g, 5, 0).any()

    def test_asymmetric_constraints(self):
        # A "broadcast" star: hub points at leaves.
        edges = [(0, i) for i in range(1, 6)]
        g = DirectedCSRGraph(6, edges)
        # Every vertex is in the (0,0)-core.
        assert dcore_subgraph(g, 0, 0).all()
        # Requiring any in-degree kills the hub, cascading to all.
        assert not dcore_subgraph(g, 1, 0).any()

    def test_cascade(self):
        # Cycle with a pendant arc: the pendant dies, the cycle lives.
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
        g = DirectedCSRGraph(4, edges)
        members = dcore_subgraph(g, 1, 1)
        assert list(members) == [True, True, True, False]

    def test_maximality_and_feasibility(self):
        g = random_digraph(300, 5.0, seed=2)
        for k, l in ((1, 1), (2, 1), (2, 3)):
            members = dcore_subgraph(g, k, l)
            idx = np.nonzero(members)[0]
            member_set = set(idx.tolist())
            for v in idx:
                din = sum(
                    1 for u in g.in_neighbors(int(v)) if int(u) in member_set
                )
                dout = sum(
                    1 for u in g.out_neighbors(int(v)) if int(u) in member_set
                )
                assert din >= k and dout >= l

    def test_monotone_in_k_and_l(self):
        g = random_digraph(200, 6.0, seed=3)
        base = dcore_subgraph(g, 1, 1)
        assert dcore_subgraph(g, 2, 1).sum() <= base.sum()
        assert dcore_subgraph(g, 1, 2).sum() <= base.sum()

    def test_validation(self):
        g = directed_cycle(3)
        with pytest.raises(ValueError):
            dcore_subgraph(g, -1, 0)


class TestDCoreDecomposition:
    def test_consistent_with_subgraph_extraction(self):
        g = random_digraph(200, 5.0, seed=4)
        for l in (0, 1, 2):
            values = dcore_in_decomposition(g, l)
            kmax = int(values.max())
            for k in range(0, kmax + 2):
                members = dcore_subgraph(g, k, l)
                assert np.array_equal(members, values >= k), (k, l)

    def test_cycle_values(self):
        g = directed_cycle(5)
        values = dcore_in_decomposition(g, 1)
        assert np.all(values == 1)

    def test_outside_core_marked_minus_one(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]  # pendant vertex 3
        g = DirectedCSRGraph(4, edges)
        values = dcore_in_decomposition(g, 1)
        assert values[3] == -1
        assert np.all(values[:3] == 1)

    def test_l_zero_matches_in_degree_peeling(self):
        """With l = 0 the D-core slice is plain in-degree coreness."""
        g = random_digraph(150, 4.0, seed=5)
        values = dcore_in_decomposition(g, 0)
        assert values.min() >= 0  # everyone is in the (0,0)-core
        # Spot-check maximality via extraction at each level.
        for k in range(int(values.max()) + 1):
            members = dcore_subgraph(g, k, 0)
            assert np.array_equal(members, values >= k), k

    def test_validation(self):
        with pytest.raises(ValueError):
            dcore_in_decomposition(directed_cycle(3), -2)
