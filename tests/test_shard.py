"""Tests for repro.shard: partitioning, kernels, pool, engine, CLI.

The load-bearing properties:

* exactness — inline shard rounds match Batagelj–Zaversnik, and pooled
  runs match the inline oracle bit-for-bit (coreness AND ledger) for
  every worker count, kernel mode and start method;
* true mmap sharing — concurrent fork and spawn children map identical
  bytes out of the same cache file;
* loud failure — a corrupt, compressed or misaligned cache file raises
  :class:`ShardWorkerError` in the coordinator, never hangs a worker.
"""

from __future__ import annotations

import io
import json
import multiprocessing as mp
import zipfile

import numpy as np
import pytest

from repro.core.sequential import bz_core
from repro.generators import erdos_renyi, grid_2d, hcns, power_law_with_hub
from repro.graphs.io import load_npz, save_npz
from repro.perf import NATIVE, REFERENCE, VECTORIZED, native_available
from repro.runtime.cost_model import DEFAULT_COST_MODEL
from repro.shard import (
    RoundKernels,
    ShardPool,
    ShardWorkerError,
    graph_digest,
    partition_ranges,
    shard_coreness,
)
from repro.shard.pool import _digest_main
from repro.shard.partition import ShardPlan


def small_graphs():
    return [
        erdos_renyi(300, 6.0, seed=101),
        power_law_with_hub(500, 4, hub_count=2, hub_degree=120, seed=102),
        grid_2d(24, 24),
        hcns(64),
    ]


def ledger(result):
    return result.metrics.to_stable_dict(DEFAULT_COST_MODEL)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartition:
    def test_bounds_cover_every_vertex_once(self):
        g = power_law_with_hub(500, 4, hub_count=2, hub_degree=120, seed=1)
        for shards in (1, 2, 3, 4, 7):
            plan = partition_ranges(g.indptr, shards)
            assert plan.shards == shards
            assert plan.bounds[0] == 0
            assert plan.bounds[-1] == g.n
            assert list(plan.bounds) == sorted(plan.bounds)

    def test_degree_balance(self):
        g = erdos_renyi(2000, 8.0, seed=2)
        weight = np.asarray(g.indptr) + np.arange(g.n + 1)
        total = int(weight[-1])
        plan = partition_ranges(g.indptr, 4)
        max_unit = int(g.degrees.max()) + 1
        for shard in range(plan.shards):
            lo, hi = plan.range_of(shard)
            share = int(weight[hi] - weight[lo])
            # Each shard is within one vertex's weight of the ideal cut.
            assert abs(share - total / 4) <= max_unit

    def test_more_shards_than_vertices(self):
        g = grid_2d(2, 2)
        plan = partition_ranges(g.indptr, 16)
        assert plan.shards == 16
        assert plan.bounds[-1] == g.n
        covered = [
            v
            for shard in range(plan.shards)
            for v in range(*plan.range_of(shard))
        ]
        assert covered == list(range(g.n))

    def test_invalid_shard_count_rejected(self):
        g = grid_2d(3, 3)
        with pytest.raises(ValueError):
            partition_ranges(g.indptr, 0)

    def test_plan_round_trips_to_dict(self):
        plan = ShardPlan(bounds=(0, 3, 9))
        assert plan.to_dict() == {"shards": 2, "bounds": [0, 3, 9]}


# ----------------------------------------------------------------------
# Round kernels
# ----------------------------------------------------------------------
class TestRoundKernels:
    def modes(self):
        modes = [REFERENCE, VECTORIZED]
        if native_available():
            modes.append(NATIVE)
        return modes

    def test_first_round_matches_reference_in_every_mode(self):
        for g in small_graphs():
            est = np.asarray(g.degrees, dtype=np.int64)
            active = np.arange(g.n, dtype=np.int64)
            hist_size = int(est.max(initial=0)) + 2
            outs = {
                mode: RoundKernels(
                    g.indptr, g.indices, hist_size, mode=mode
                ).hindex_round(est, active)
                for mode in self.modes()
            }
            base = outs.pop(REFERENCE)
            for mode, out in outs.items():
                assert np.array_equal(base, out), (g.name, mode)

    def test_next_active_is_neighbors_of_changed(self):
        g = erdos_renyi(200, 5.0, seed=3)
        changed = np.array([0, 17, 100], dtype=np.int64)
        expected = np.unique(
            np.concatenate([g.neighbors(int(v)) for v in changed])
        )
        for mode in self.modes():
            kernels = RoundKernels(g.indptr, g.indices, 64, mode=mode)
            got = kernels.next_active(changed, 0, g.n)
            assert np.array_equal(got, expected), mode
            lo, hi = 50, 150
            window = kernels.next_active(changed, lo, hi)
            assert np.array_equal(
                window, expected[(expected >= lo) & (expected < hi)]
            ), mode

    def test_empty_active_set(self):
        g = grid_2d(4, 4)
        kernels = RoundKernels(g.indptr, g.indices, 8)
        est = np.asarray(g.degrees, dtype=np.int64)
        assert kernels.hindex_round(est, np.zeros(0, np.int64)).size == 0
        assert kernels.next_active(np.zeros(0, np.int64), 0, g.n).size == 0


# ----------------------------------------------------------------------
# Engine: inline oracle and pooled equality
# ----------------------------------------------------------------------
class TestEngine:
    def test_inline_matches_bz(self):
        for g in small_graphs():
            result = shard_coreness(g, workers=0)
            assert np.array_equal(
                result.coreness, bz_core(g, DEFAULT_COST_MODEL).coreness
            ), g.name
            assert result.algorithm == "shard"

    def test_pooled_bit_equal_to_inline(self):
        g = power_law_with_hub(500, 4, hub_count=2, hub_degree=120, seed=4)
        inline = shard_coreness(g, workers=0)
        for workers in (1, 2, 3):
            pooled = shard_coreness(g, workers=workers)
            assert np.array_equal(pooled.coreness, inline.coreness)
            assert ledger(pooled) == ledger(inline), workers

    def test_spawn_context_bit_equal(self):
        g = grid_2d(16, 16)
        inline = shard_coreness(g, workers=0)
        pooled = shard_coreness(g, workers=2, context="spawn")
        assert np.array_equal(pooled.coreness, inline.coreness)
        assert ledger(pooled) == ledger(inline)

    def test_pool_reuse_across_runs(self, tmp_path):
        g = erdos_renyi(300, 6.0, seed=5)
        path = str(tmp_path / "g.npz")
        save_npz(g, path, compress=False)
        inline = shard_coreness(g, workers=0)
        with ShardPool(
            path, partition_ranges(g.indptr, 2), mode=REFERENCE
        ) as pool:
            for _ in range(2):
                pooled = shard_coreness(g, pool=pool)
                assert np.array_equal(pooled.coreness, inline.coreness)
                assert ledger(pooled) == ledger(inline)

    def test_empty_graph(self):
        g = grid_2d(1, 1)
        result = shard_coreness(g, workers=2)
        assert result.coreness.size == 1
        assert result.coreness[0] == 0

    def test_round_limit_raises(self):
        g = grid_2d(8, 8)
        with pytest.raises(RuntimeError):
            shard_coreness(g, workers=0, max_rounds=1)


# ----------------------------------------------------------------------
# mmap sharing across fork and spawn
# ----------------------------------------------------------------------
def _child_digests(path: str, method: str, children: int = 2) -> list[str]:
    """Digests computed by concurrent children using ``method`` start."""
    ctx = mp.get_context(method)
    pipes, procs = [], []
    for _ in range(children):
        parent_end, child_end = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_digest_main, args=(child_end, path))
        proc.start()
        child_end.close()
        pipes.append(parent_end)
        procs.append(proc)
    replies = [conn.recv() for conn in pipes]
    for proc in procs:
        proc.join(timeout=30)
    for status, payload in replies:
        assert status == "ok", payload
    return [payload for _, payload in replies]


class TestMmapSharing:
    @pytest.fixture()
    def cache_file(self, tmp_path):
        g = power_law_with_hub(400, 4, hub_count=2, hub_degree=90, seed=6)
        path = str(tmp_path / "shared.npz")
        save_npz(g, path, compress=False)
        return path

    def test_strict_mmap_load_is_a_true_mapping(self, cache_file):
        g = load_npz(cache_file, mmap=True, strict=True)
        # The CSR arrays must be zero-copy views onto the file mapping
        # (np.asarray wraps the memmap without copying).
        for array in (g.indptr, g.indices):
            assert not array.flags.owndata
            assert isinstance(array.base, np.memmap)
        from repro.shard import resolve_graph_path

        assert resolve_graph_path(g) == cache_file

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_concurrent_children_map_identical_bytes(
        self, cache_file, method
    ):
        expected = graph_digest(cache_file)
        digests = _child_digests(cache_file, method)
        assert digests == [expected] * len(digests)


# ----------------------------------------------------------------------
# Loud failure on bad cache files
# ----------------------------------------------------------------------
def _misaligned_npz(path: str, graph) -> None:
    """A stored npz whose int64 members start at a non-8-aligned offset."""
    arrays = {
        "name.npy": np.array(graph.name),
        "indptr.npy": np.asarray(graph.indptr),
        "indices.npy": np.asarray(graph.indices),
    }
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for member, arr in arrays.items():
            buf = io.BytesIO()
            np.lib.format.write_array(buf, arr, allow_pickle=False)
            zinfo = zipfile.ZipInfo(member, date_time=(1980, 1, 1, 0, 0, 0))
            zinfo.compress_type = zipfile.ZIP_STORED
            # A 5-byte extra field shifts the member payload off any
            # 8-byte boundary (numpy pads npy headers to 64 bytes, so
            # without the shift the data offset would be 8-aligned).
            zinfo.extra = b"\x00\x00\x01\x00\x00"
            archive.writestr(zinfo, buf.getvalue())


class TestLoudFailure:
    def test_compressed_cache_fails_strict_load(self, tmp_path):
        g = grid_2d(6, 6)
        path = str(tmp_path / "compressed.npz")
        save_npz(g, path, compress=True)
        with pytest.raises(ValueError):
            load_npz(path, mmap=True, strict=True)
        # The non-strict path still loads (copying fallback).
        assert load_npz(path, mmap=True).n == g.n

    def test_misaligned_cache_fails_strict_load(self, tmp_path):
        g = grid_2d(6, 6)
        path = str(tmp_path / "misaligned.npz")
        _misaligned_npz(path, g)
        with pytest.raises(ValueError, match="unaligned"):
            load_npz(path, mmap=True, strict=True)

    def test_misaligned_cache_surfaces_as_coordinator_error(self, tmp_path):
        g = grid_2d(6, 6)
        path = str(tmp_path / "misaligned.npz")
        _misaligned_npz(path, g)
        with pytest.raises(ShardWorkerError, match="unaligned"):
            shard_coreness(g, workers=2, graph_path=path)

    def test_corrupt_cache_surfaces_as_coordinator_error(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as handle:
            handle.write(b"this is not a zip archive")
        g = grid_2d(6, 6)
        with pytest.raises(ShardWorkerError):
            shard_coreness(g, workers=2, graph_path=path)

    def test_worker_death_is_an_error_not_a_hang(self, tmp_path):
        g = grid_2d(6, 6)
        path = str(tmp_path / "g.npz")
        save_npz(g, path, compress=False)
        pool = ShardPool(path, partition_ranges(g.indptr, 2), REFERENCE)
        try:
            for proc in pool._procs:
                proc.terminate()
                proc.join(timeout=30)
            with pytest.raises(ShardWorkerError):
                pool.round(
                    np.zeros(0, np.int64), np.zeros(0, np.int64)
                )
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Registry metrics and the CLI report
# ----------------------------------------------------------------------
class TestObservability:
    def test_shard_counters_recorded(self):
        from repro.obs import MetricsRegistry, observing

        g = grid_2d(12, 12)
        registry = MetricsRegistry("shard-test")
        with observing(registry):
            result = shard_coreness(g, workers=2)
        counters = registry.counter_values("shard.")
        assert counters["shard.rounds"] == result.metrics.rounds
        assert counters["shard.deltas"] > 0
        assert counters["shard.bytes_shipped"] > 0

    def test_report_is_worker_count_invariant(self, tmp_path, capsys):
        from repro.shard.cli import main

        reports = []
        for workers in (0, 2):
            out = tmp_path / f"report-{workers}.json"
            code = main(
                ["GRID", "--tiny", "--workers", str(workers),
                 "--output", str(out)]
            )
            assert code == 0
            reports.append(out.read_bytes())
        assert reports[0] == reports[1]
        payload = json.loads(reports[0])
        assert payload["shard_report_version"] == 1
        assert payload["rounds"] > 0
        assert "workers" not in payload
