"""Tests for the work-efficient framework (Alg. 1) and its configurations."""

import numpy as np
import pytest

from repro.core.framework import (
    BUCKET_CHOICES,
    FrameworkConfig,
    decompose,
    make_buckets,
)
from repro.core.parallel_kcore import ParallelKCore, kcore
from repro.core.verify import reference_coreness
from repro.generators import erdos_renyi, grid_2d, hcns
from repro.structures import FixedBuckets, SingleBucket


ALL_CONFIGS = [
    FrameworkConfig(peel="online", buckets=b, sampling=s, vgc=v)
    for b in BUCKET_CHOICES
    for s in (False, True)
    for v in (False, True)
] + [
    FrameworkConfig(peel="offline", buckets=b) for b in BUCKET_CHOICES
]


@pytest.mark.parametrize(
    "config", ALL_CONFIGS, ids=[c.label() for c in ALL_CONFIGS]
)
def test_every_configuration_is_exact(config, any_graph):
    result = decompose(any_graph, config)
    assert np.array_equal(
        result.coreness, reference_coreness(any_graph)
    ), config.label()


class TestConfigValidation:
    def test_unknown_peel(self, triangle):
        with pytest.raises(ValueError):
            decompose(triangle, FrameworkConfig(peel="magic"))

    def test_sampling_with_offline_rejected(self, triangle):
        with pytest.raises(ValueError):
            decompose(
                triangle, FrameworkConfig(peel="offline", sampling=True)
            )

    def test_make_buckets_names(self):
        assert isinstance(make_buckets("1"), SingleBucket)
        assert isinstance(make_buckets("16"), FixedBuckets)

    def test_make_buckets_passthrough(self):
        instance = SingleBucket()
        assert make_buckets(instance) is instance

    def test_make_buckets_unknown(self):
        with pytest.raises(ValueError):
            make_buckets("42")

    def test_label(self):
        assert FrameworkConfig().label() == "online+plain"
        assert (
            FrameworkConfig(vgc=True, sampling=True, buckets="hbs").label()
            == "online+vgc+sample+hbs"
        )
        assert FrameworkConfig(name="custom").label() == "custom"


class TestDefaultConfig:
    def test_decompose_default_config(self, small_er):
        result = decompose(small_er)
        assert np.array_equal(
            result.coreness, reference_coreness(small_er)
        )

    def test_kcore_convenience(self, small_er):
        assert np.array_equal(
            kcore(small_er), reference_coreness(small_er)
        )


class TestMetricsShape:
    def test_rounds_at_least_kmax(self, small_er):
        result = decompose(small_er)
        assert result.metrics.rounds >= result.kmax

    def test_subrounds_counted(self, small_grid):
        result = decompose(small_grid)
        assert result.metrics.subrounds > 0
        assert result.rho == result.metrics.subrounds

    def test_work_efficiency_bound(self):
        """Framework work stays within a small constant of n + m."""
        g = erdos_renyi(2000, 10.0, seed=5)
        for config in (
            FrameworkConfig(),  # plain online
            FrameworkConfig(peel="offline", buckets="16"),
        ):
            result = decompose(g, config)
            assert result.metrics.work <= 25 * (g.n + g.m), config.label()

    def test_peak_frontier_bounded_by_n(self, small_er):
        result = decompose(small_er)
        assert 0 < result.metrics.peak_frontier <= small_er.n

    def test_empty_graph(self):
        from repro.generators import empty_graph

        result = decompose(empty_graph(0))
        assert result.coreness.size == 0
        assert result.kmax == 0


class TestParallelKCoreAPI:
    def test_default_flags(self):
        solver = ParallelKCore()
        assert solver.sampling and solver.vgc
        assert solver.buckets == "adaptive"

    def test_label_names(self):
        assert ParallelKCore().label() == "All"
        assert ParallelKCore.plain().label() == "Plain"
        assert (
            ParallelKCore(sampling=False, vgc=True, buckets="1").label()
            == "VGC"
        )
        assert (
            ParallelKCore(sampling=True, vgc=False, buckets="hbs").label()
            == "Sample+HBS"
        )

    def test_variants_cover_table3(self):
        variants = ParallelKCore.variants()
        assert set(variants) == {
            "Plain", "VGC", "Sample", "HBS",
            "VGC+Sample", "VGC+HBS", "Sample+HBS", "All",
        }

    def test_variants_all_exact(self, small_hcns):
        ref = reference_coreness(small_hcns)
        for label, solver in ParallelKCore.variants().items():
            got = solver.decompose(small_hcns).coreness
            assert np.array_equal(got, ref), label

    def test_coreness_shortcut(self, triangle):
        assert list(ParallelKCore().coreness(triangle)) == [2, 2, 2]

    def test_solver_reusable(self, triangle, small_grid):
        solver = ParallelKCore()
        first = solver.decompose(triangle)
        second = solver.decompose(small_grid)
        assert first.kmax == 2
        assert second.kmax == 2
        assert first.coreness.size != second.coreness.size

    def test_result_core_members(self, small_hcns):
        result = ParallelKCore().decompose(small_hcns)
        members = result.core_members(24)
        assert members.size == 25  # the clique

    def test_vgc_queue_size_plumbed(self, small_grid):
        solver = ParallelKCore(queue_size=4)
        result = solver.decompose(small_grid)
        assert np.array_equal(
            result.coreness, reference_coreness(small_grid)
        )
