"""The differential update oracle: sweep, fault injection, reproducers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch_dynamic import BatchDynamicKCore
from repro.regress.cli import main as regress_main
from repro.regress.goldens import read_golden
from repro.regress.matrix import load_graph
from repro.regress.reduce import minimize_sequence
from repro.regress.update_oracle import (
    UPDATE_CASES,
    UpdateCase,
    load_update_reproducer,
    replay_reproducer,
    run_update_case,
    run_update_matrix,
    run_update_oracle,
)


# ----------------------------------------------------------------------
# ddmin over sequences
# ----------------------------------------------------------------------
def test_minimize_sequence_shrinks_to_culprit():
    items = list(range(50))
    minimized = minimize_sequence(items, lambda seq: 42 in seq)
    assert minimized == [42]


def test_minimize_sequence_preserves_order():
    items = [5, 3, 9, 1, 7]
    # Failing iff both 3 and 7 survive, in that order.
    def failing(seq):
        return 3 in seq and 7 in seq and seq.index(3) < seq.index(7)

    assert minimize_sequence(items, failing) == [3, 7]


def test_minimize_sequence_requires_failing_input():
    with pytest.raises(ValueError):
        minimize_sequence([1, 2, 3], lambda seq: False)


# ----------------------------------------------------------------------
# The sweep, clean and with a seeded fault
# ----------------------------------------------------------------------
class FaultyEngine(BatchDynamicKCore):
    """Seeded fault: the deletion cascade forgets most dirty vertices."""

    def _deletion_cascade(self, dirty, stream):
        return super()._deletion_cascade(dirty[:1], stream)


def tiny_corpus():
    return {"er-300": load_graph("er-300")}


def test_oracle_clean_on_correct_engine():
    findings = run_update_oracle(
        graphs=tiny_corpus(),
        seeds=(0, 1),
        batches=4,
        batch_size=8,
    )
    assert findings == []


def test_seeded_fault_is_found_minimized_and_replayable(tmp_path):
    findings = run_update_oracle(
        graphs=tiny_corpus(),
        profiles=("churn",),
        seeds=(0, 1, 2),
        batches=5,
        batch_size=10,
        engine_factory=FaultyEngine,
        check_legacy=False,
        dump_dir=tmp_path,
    )
    assert findings, "the seeded fault must be detected"
    finding = findings[0]
    assert finding.oracle == "recompute"
    assert finding.minimized_updates is not None
    assert finding.reproducer_path is not None

    # ddmin produced a witness no larger than the full sequence that
    # still fails under the faulty engine...
    graph, updates, payload = load_update_reproducer(
        finding.reproducer_path
    )
    assert updates == finding.minimized_updates
    assert payload["kind"] == "update-sequence"
    assert payload["expected_coreness"] is not None
    divergence = replay_reproducer(
        finding.reproducer_path, engine_factory=FaultyEngine
    )
    assert divergence is not None

    # ...and replays clean under the correct engine.
    assert replay_reproducer(finding.reproducer_path) is None


def test_minimized_witness_is_minimal_under_fault():
    findings = run_update_oracle(
        graphs=tiny_corpus(),
        profiles=("churn",),
        seeds=(0,),
        batches=5,
        batch_size=10,
        engine_factory=FaultyEngine,
        check_legacy=False,
    )
    if not findings:  # pragma: no cover - seed-dependent guard
        pytest.skip("seed 0 did not trip the seeded fault")
    finding = findings[0]
    total = (finding.batch_index + 1) * 10
    assert len(finding.minimized_updates) < total


# ----------------------------------------------------------------------
# Pinned update-sequence goldens
# ----------------------------------------------------------------------
def test_twelve_pinned_cases():
    assert len(UPDATE_CASES) == 12
    keys = [case.entry_key for case in UPDATE_CASES]
    assert len(set(keys)) == 12
    for case in UPDATE_CASES:
        assert case.case_id == f"updates/{case.entry_key}"


def test_update_case_payload_is_deterministic():
    case = UpdateCase(graph="grid-24", profile="steady", seed=13)
    first = run_update_case(case)
    second = run_update_case(case)
    assert first == second
    assert set(first) == {
        "graph",
        "stream",
        "final_graph",
        "coreness",
        "trajectory_sha256",
        "metrics",
    }
    assert len(first["trajectory_sha256"]) == 16


def test_update_matrix_filter():
    matrix = run_update_matrix("grid-24")
    assert set(matrix) == {"updates"}
    assert all("grid-24" in key for key in matrix["updates"])
    assert run_update_matrix("no-such-case") == {}


def test_blessed_goldens_match_fresh_run():
    blessed = read_golden("updates")
    assert set(blessed) == {case.entry_key for case in UPDATE_CASES}
    case = next(c for c in UPDATE_CASES if c.graph == "er-300")
    assert run_update_case(case) == blessed[case.entry_key]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_oracle_updates_smoke(capsys):
    status = regress_main(
        [
            "oracle-updates",
            "--graphs",
            "GRID",
            "--seeds",
            "1",
            "--batches",
            "3",
            "--batch-size",
            "6",
            "--no-legacy",
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "OK: batch engine bit-equal" in out
    assert "3 sequences" in out


def test_cli_list_includes_update_cases(capsys):
    assert regress_main(["list"]) == 0
    out = capsys.readouterr().out
    for case in UPDATE_CASES:
        assert case.case_id in out
    assert "12 update" in out
