"""The ddmin graph reducer and reproducer dumps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import complete_graph, erdos_renyi, path_graph
from repro.graphs.csr import CSRGraph
from repro.graphs.transform import disjoint_union
from repro.regress import dump_reproducer, load_reproducer, minimize_graph


def _has_triangle(graph: CSRGraph) -> bool:
    for v in range(graph.n):
        nbrs = graph.neighbors(v)
        marks = set(nbrs.tolist())
        for u in nbrs:
            if u > v:
                if any(w in marks for w in graph.neighbors(u) if w > u):
                    return True
    return False


class TestMinimizeGraph:
    def test_shrinks_to_the_triangle(self):
        # One triangle buried in 60 vertices of chaff.
        graph = disjoint_union(complete_graph(3), path_graph(60))
        assert _has_triangle(graph)
        small = minimize_graph(graph, _has_triangle)
        assert small.n == 3
        assert _has_triangle(small)

    def test_requires_initially_failing(self):
        with pytest.raises(ValueError, match="initially failing"):
            minimize_graph(path_graph(10), _has_triangle)

    def test_result_always_fails(self):
        graph = erdos_renyi(120, 8.0, seed=5)
        assert _has_triangle(graph)
        small = minimize_graph(graph, _has_triangle)
        assert _has_triangle(small)
        assert small.n <= graph.n

    def test_budget_caps_predicate_calls(self):
        calls = []

        def counting(graph: CSRGraph) -> bool:
            calls.append(graph.n)
            return _has_triangle(graph)

        graph = erdos_renyi(150, 8.0, seed=6)
        minimize_graph(graph, counting, budget=25)
        assert len(calls) <= 26

    def test_names_the_reproducer(self):
        graph = disjoint_union(complete_graph(3), path_graph(5))
        graph.name = "witness"
        small = minimize_graph(graph, _has_triangle)
        assert small.name == "witness/reproducer"


class TestReproducerDump:
    def test_round_trip(self, tmp_path):
        graph = erdos_renyi(40, 4.0, seed=9)
        graph.name = "er-40"
        expected = np.arange(graph.n, dtype=np.int64)
        got = expected + 1
        path = dump_reproducer(
            graph,
            tmp_path / "repro.json",
            engine="fake",
            expected=expected,
            got=got,
        )
        rebuilt, payload = load_reproducer(path)
        assert rebuilt.n == graph.n
        assert rebuilt.m == graph.m
        assert np.array_equal(rebuilt.degrees, graph.degrees)
        assert payload["engine"] == "fake"
        assert payload["expected_coreness"] == expected.tolist()
        assert payload["got_coreness"] == got.tolist()

    def test_dump_without_arrays(self, tmp_path):
        graph = path_graph(5)
        path = dump_reproducer(graph, tmp_path / "bare.json")
        rebuilt, payload = load_reproducer(path)
        assert rebuilt.n == 5
        assert payload["expected_coreness"] is None

    def test_creates_parent_dirs(self, tmp_path):
        path = dump_reproducer(
            path_graph(4), tmp_path / "deep" / "nested" / "r.json"
        )
        assert path.exists()
