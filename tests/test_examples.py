"""Smoke tests: the fast example scripts must run end to end.

The slower examples (full suite sweeps) are exercised implicitly by the
benchmark suite; here we execute the quick ones as a user would.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert "quickstart" in names
    assert len(names) >= 8  # the README's example table


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "decomposition verified." in out


def test_trace_flagship_runs(tmp_path, capsys):
    load_example("trace_flagship").main(output_dir=str(tmp_path))
    out = capsys.readouterr().out
    assert "trace: All/LJ-S.tiny" in out
    assert "busiest round" in out
    assert (tmp_path / "flagship.trace.json").exists()
    assert (tmp_path / "flagship.folded").exists()


def test_waves_visualization_runs(capsys):
    load_example("peeling_waves_visualization").main()
    out = capsys.readouterr().out
    assert "subrounds" in out
    assert "with VGC" in out


def test_hbs_trace_runs(capsys):
    load_example("hbs_interval_trace").main()
    out = capsys.readouterr().out
    assert "[8-15]" in out
    assert "k_max = 64" in out


def test_network_robustness_runs(capsys):
    load_example("network_robustness").main()
    out = capsys.readouterr().out
    assert "collapsed-k-core" in out
    assert "critical users" in out


def test_algorithm_comparison_runs(capsys):
    load_example("algorithm_comparison").main("GL5-S")
    out = capsys.readouterr().out
    assert "fastest parallel" in out


@pytest.mark.parametrize(
    "name",
    [
        "social_network_analysis",
        "road_network_peeling",
        "dense_subgraph_discovery",
        "mesh_simulation_frames",
        "streaming_core_maintenance",
        "approximate_and_profiling",
        "weighted_and_truss_cores",
    ],
)
def test_example_modules_importable(name):
    """Heavier examples: importable with a callable main()."""
    module = load_example(name)
    assert callable(module.main)
