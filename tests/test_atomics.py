"""Edge cases of the batch-atomic helpers (repro.runtime.atomics).

The helpers encode the frontier-synchronous equivalent of hardware
atomics; the properties under test are exactly the ones algorithm
correctness leans on: empty batches are no-ops, duplicate targets
accumulate, and each threshold crossing is observed **exactly once** no
matter how many concurrent decrements produced it.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.atomics import (
    batch_decrement,
    batch_increment_clamped,
    contention_of,
)


class TestBatchDecrementEmpty:
    def test_empty_targets_is_a_noop(self):
        values = np.array([4, 3, 2], dtype=np.int64)
        out = batch_decrement(values, np.array([], dtype=np.int64), k=2)
        assert out.counts.size == 0
        assert out.crossed.size == 0
        assert out.touched.size == 0
        assert out.old.size == 0
        assert out.new.size == 0
        np.testing.assert_array_equal(values, [4, 3, 2])

    def test_empty_targets_on_empty_values(self):
        values = np.zeros(0, dtype=np.int64)
        out = batch_decrement(values, np.zeros(0, dtype=np.int64), k=0)
        assert out.crossed.size == 0


class TestBatchDecrementDuplicates:
    def test_repeated_target_crosses_threshold_once(self):
        # Three decrements in one batch take vertex 0 from 5 to 2,
        # crossing k=3 inside the batch: reported exactly once.
        values = np.array([5], dtype=np.int64)
        targets = np.array([0, 0, 0], dtype=np.int64)
        out = batch_decrement(values, targets, k=3)
        np.testing.assert_array_equal(out.counts, [3])
        np.testing.assert_array_equal(out.crossed, [0])
        np.testing.assert_array_equal(values, [2])

    def test_exactly_one_crossing_per_vertex(self):
        # Many duplicate decrements across several vertices: `crossed`
        # contains each crossing vertex exactly once (atomicity: one
        # thread observes the crossing), and only genuine crossings.
        values = np.array([10, 4, 4, 3, 1], dtype=np.int64)
        targets = np.array(
            [0, 0, 1, 1, 1, 2, 3, 3, 4, 4, 4], dtype=np.int64
        )
        out = batch_decrement(values, targets, k=3)
        # v0: 10 -> 8 stays above; v1: 4 -> 1 crosses; v2: 4 -> 3
        # crosses; v3: 3 -> 1 was already at/below k (old > k fails);
        # v4: 1 -> -2 likewise.
        np.testing.assert_array_equal(out.crossed, [1, 2])
        assert np.unique(out.crossed).size == out.crossed.size

    def test_already_below_threshold_never_recrosses(self):
        values = np.array([2, 2], dtype=np.int64)
        targets = np.array([0, 1, 1], dtype=np.int64)
        out = batch_decrement(values, targets, k=3)
        assert out.crossed.size == 0

    def test_touched_old_new_alignment(self):
        values = np.array([7, 9, 5], dtype=np.int64)
        targets = np.array([2, 0, 2, 0, 0], dtype=np.int64)
        out = batch_decrement(values, targets, k=0)
        np.testing.assert_array_equal(out.touched, [0, 2])
        np.testing.assert_array_equal(out.old, [7, 5])
        np.testing.assert_array_equal(out.counts, [3, 2])
        np.testing.assert_array_equal(out.new, [4, 3])
        np.testing.assert_array_equal(values, [4, 9, 3])


class TestBatchDecrementFloor:
    def test_floor_clamps_stored_values(self):
        values = np.array([2, 6], dtype=np.int64)
        targets = np.array([0, 0, 0, 1], dtype=np.int64)
        out = batch_decrement(values, targets, k=1, floor=0)
        np.testing.assert_array_equal(values, [0, 5])
        np.testing.assert_array_equal(out.new, [0, 5])
        # Crossing detection still fires for the clamped vertex.
        np.testing.assert_array_equal(out.crossed, [0])

    def test_without_floor_values_go_negative(self):
        values = np.array([1], dtype=np.int64)
        batch_decrement(values, np.array([0, 0, 0]), k=0)
        assert values[0] == -2


class TestBatchIncrementClamped:
    def test_empty_targets_is_a_noop(self):
        counters = np.array([1, 2], dtype=np.int64)
        counts, reached = batch_increment_clamped(
            counters, np.array([], dtype=np.int64), limit=3
        )
        assert counts.size == 0
        assert reached.size == 0
        np.testing.assert_array_equal(counters, [1, 2])

    def test_duplicates_cross_limit_exactly_once(self):
        # Four increments in one batch take the counter from 1 past the
        # limit 3: the "collected enough samples" event fires once.
        counters = np.array([1], dtype=np.int64)
        targets = np.array([0, 0, 0, 0], dtype=np.int64)
        counts, reached = batch_increment_clamped(counters, targets, limit=3)
        np.testing.assert_array_equal(counts, [4])
        np.testing.assert_array_equal(reached, [0])
        assert counters[0] == 5

    def test_counter_already_at_limit_never_refires(self):
        counters = np.array([3, 0], dtype=np.int64)
        targets = np.array([0, 0, 1], dtype=np.int64)
        counts, reached = batch_increment_clamped(counters, targets, limit=3)
        np.testing.assert_array_equal(counts, [2, 1])
        # Vertex 0 was at the limit before the batch: no new event.
        assert reached.size == 0

    def test_exactly_one_event_across_many_counters(self):
        counters = np.array([2, 2, 5], dtype=np.int64)
        targets = np.array([0, 0, 1, 2, 2, 2], dtype=np.int64)
        counts, reached = batch_increment_clamped(counters, targets, limit=3)
        np.testing.assert_array_equal(reached, [0, 1])
        assert np.unique(reached).size == reached.size


class TestContentionOf:
    def test_counts_match_duplicate_multiplicity(self):
        counts = contention_of(np.array([5, 5, 5, 2, 2, 9]))
        np.testing.assert_array_equal(sorted(counts), [1, 2, 3])

    def test_empty(self):
        assert contention_of(np.array([], dtype=np.int64)).size == 0
