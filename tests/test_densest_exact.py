"""Tests for the exact densest-subgraph solver and the 2-approx bound."""

import itertools

import numpy as np
import pytest

from repro.core.applications import densest_subgraph_peel
from repro.core.densest_exact import Dinic, exact_densest_subgraph
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graphs.csr import CSRGraph


def brute_force_densest(graph):
    """Exhaustive optimum for tiny graphs."""
    best_density = 0.0
    best = ()
    for size in range(1, graph.n + 1):
        for subset in itertools.combinations(range(graph.n), size):
            sub = graph.induced_subgraph(np.asarray(subset))
            density = sub.num_edges / sub.n
            if density > best_density + 1e-12:
                best_density = density
                best = subset
    return best, best_density


class TestDinic:
    def test_simple_network(self):
        net = Dinic(4)
        net.add_edge(0, 1, 3)
        net.add_edge(0, 2, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(2, 3, 3)
        net.add_edge(1, 2, 1)
        assert net.max_flow(0, 3) == pytest.approx(5.0)

    def test_disconnected(self):
        net = Dinic(3)
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 2) == 0.0

    def test_min_cut_side(self):
        net = Dinic(3)
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 100)
        net.max_flow(0, 2)
        side = net.min_cut_source_side(0)
        assert side[0] and not side[1] and not side[2]


class TestExactDensest:
    def test_clique_is_densest(self):
        g = complete_graph(6)
        members, density = exact_densest_subgraph(g)
        assert members.size == 6
        assert density == pytest.approx(15 / 6)

    def test_planted_clique(self):
        edges = [(u, v) for u in range(6) for v in range(u + 1, 6)]
        edges += [(5 + i, 6 + i) for i in range(10)]
        g = CSRGraph.from_edges(16, edges)
        members, density = exact_densest_subgraph(g)
        assert set(members.tolist()) == set(range(6))
        assert density == pytest.approx(15 / 6)

    def test_matches_brute_force(self):
        for seed in range(4):
            g = erdos_renyi(10, 3.0, seed=seed)
            _, exact = exact_densest_subgraph(g)
            _, brute = brute_force_densest(g)
            assert exact == pytest.approx(brute, abs=1e-6), seed

    def test_star_density(self):
        members, density = exact_densest_subgraph(star_graph(9))
        # Best is the whole star: 8 edges / 9 vertices; any sub-star
        # (hub + j leaves) has j/(j+1) < 8/9.
        assert density == pytest.approx(8 / 9)

    def test_cycle_and_path(self):
        _, cy = exact_densest_subgraph(cycle_graph(8))
        assert cy == pytest.approx(1.0)
        _, pa = exact_densest_subgraph(path_graph(8))
        assert pa == pytest.approx(7 / 8)

    def test_empty(self):
        from repro.generators import empty_graph

        members, density = exact_densest_subgraph(empty_graph(4))
        assert members.size == 0
        assert density == 0.0


class TestApproximationCertificate:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_peel_within_factor_two(self, seed):
        """Charikar's bound, certified against the exact optimum."""
        g = erdos_renyi(80, 6.0, seed=seed)
        approx = densest_subgraph_peel(g)
        _, exact = exact_densest_subgraph(g)
        assert approx.density >= exact / 2 - 1e-9
        assert approx.density <= exact + 1e-9

    def test_peel_often_near_exact_on_planted(self):
        edges = [(u, v) for u in range(8) for v in range(u + 1, 8)]
        edges += [(7 + i, 8 + i) for i in range(12)]
        g = CSRGraph.from_edges(20, edges)
        approx = densest_subgraph_peel(g)
        _, exact = exact_densest_subgraph(g)
        assert approx.density == pytest.approx(exact)
