"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import (
    complete_graph,
    cycle_graph,
    delaunay_mesh,
    empty_graph,
    erdos_renyi,
    grid_2d,
    hcns,
    path_graph,
    power_law_with_hub,
    star_graph,
)
from repro.graphs.csr import CSRGraph


@pytest.fixture
def triangle() -> CSRGraph:
    """K3: coreness 2 everywhere."""
    return CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)], name="triangle")


@pytest.fixture
def small_er() -> CSRGraph:
    """A 200-vertex random graph with average degree ~6."""
    return erdos_renyi(200, 6.0, seed=7)


@pytest.fixture
def medium_er() -> CSRGraph:
    """A 600-vertex random graph with average degree ~10."""
    return erdos_renyi(600, 10.0, seed=11)


@pytest.fixture
def small_grid() -> CSRGraph:
    return grid_2d(12, 12)


@pytest.fixture
def small_hcns() -> CSRGraph:
    return hcns(24)


@pytest.fixture
def hub_graph() -> CSRGraph:
    """Power-law graph with explicit hubs; triggers sampling."""
    return power_law_with_hub(
        1200, 4, hub_count=2, hub_degree=500, seed=3
    )


@pytest.fixture(
    params=[
        "triangle",
        "er",
        "grid",
        "hcns",
        "star",
        "path",
        "cycle",
        "clique",
        "mesh",
        "empty",
    ]
)
def any_graph(request) -> CSRGraph:
    """A small zoo of graph shapes for cross-algorithm agreement tests."""
    builders = {
        "triangle": lambda: CSRGraph.from_edges(
            3, [(0, 1), (1, 2), (2, 0)], name="triangle"
        ),
        "er": lambda: erdos_renyi(150, 5.0, seed=5),
        "grid": lambda: grid_2d(9, 11),
        "hcns": lambda: hcns(12),
        "star": lambda: star_graph(40),
        "path": lambda: path_graph(30),
        "cycle": lambda: cycle_graph(25),
        "clique": lambda: complete_graph(15),
        "mesh": lambda: delaunay_mesh(120, seed=9),
        "empty": lambda: empty_graph(8),
    }
    return builders[request.param]()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
