"""Tests for the hierarchical core decomposition."""

import numpy as np
import pytest

from repro.core.hierarchy import core_hierarchy, hierarchy_levels
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi,
    grid_2d,
)
from repro.graphs.csr import CSRGraph


def two_cliques_bridged(k=5, bridge=4):
    """Two K_k cliques joined by a path of `bridge` vertices."""
    edges = []
    for base in (0, k):
        for u in range(base, base + k):
            for v in range(u + 1, base + k):
                edges.append((u, v))
    chain = [k - 1] + list(range(2 * k, 2 * k + bridge)) + [k]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    return CSRGraph.from_edges(2 * k + bridge, edges)


class TestStructure:
    def test_two_cliques_give_two_deep_components(self):
        g = two_cliques_bridged()
        roots = core_hierarchy(g)
        assert len(roots) == 1  # connected graph
        levels = hierarchy_levels(roots)
        assert levels[4] == 2  # two separate 4-core components (the K5s)

    def test_root_covers_component(self, medium_er):
        roots = core_hierarchy(medium_er)
        covered = np.concatenate([r.vertices for r in roots])
        assert sorted(covered.tolist()) == list(range(medium_er.n))

    def test_nesting_invariant(self, medium_er):
        roots = core_hierarchy(medium_er)
        stack = list(roots)
        while stack:
            node = stack.pop()
            members = set(node.vertices.tolist())
            for child in node.children:
                assert child.k > node.k
                assert set(child.vertices.tolist()) <= members
                assert child.parent is node
                stack.append(child)

    def test_members_match_k_core_components(self, medium_er):
        kappa = reference_coreness(medium_er)
        roots = core_hierarchy(medium_er, kappa)
        stack = list(roots)
        while stack:
            node = stack.pop()
            assert np.all(kappa[node.vertices] >= node.k)
            stack.extend(node.children)

    def test_depth_at_least_kmax_levels(self, medium_er):
        kappa = reference_coreness(medium_er)
        roots = core_hierarchy(medium_er, kappa)
        assert max(r.depth() for r in roots) >= 1

    def test_clique_single_node(self):
        roots = core_hierarchy(complete_graph(6))
        assert len(roots) == 1
        assert roots[0].k <= 5
        assert roots[0].size == 6
        assert not roots[0].children  # one core level only

    def test_disconnected_graph_multiple_roots(self):
        g = CSRGraph.from_edges(7, [(0, 1), (2, 3), (3, 4), (2, 4)])
        roots = core_hierarchy(g)
        # Components: {0,1}, {2,3,4}, and isolated {5}, {6}.
        assert len(roots) == 4

    def test_grid_is_flat(self):
        roots = core_hierarchy(grid_2d(6, 6))
        assert len(roots) == 1
        # Uniform coreness 2: the hierarchy is a single node.
        assert roots[0].size == 36
        assert not roots[0].children

    def test_empty_graph(self):
        assert core_hierarchy(empty_graph(0)) == []

    def test_shape_validation(self, triangle):
        with pytest.raises(ValueError):
            core_hierarchy(triangle, np.zeros(5))

    def test_precomputed_matches_computed(self, small_er):
        kappa = reference_coreness(small_er)
        a = hierarchy_levels(core_hierarchy(small_er))
        b = hierarchy_levels(core_hierarchy(small_er, kappa))
        assert a == b
