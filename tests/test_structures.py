"""Tests for the concurrent structures: hash bag, hash table, buckets."""

import numpy as np
import pytest

from repro.core.verify import reference_coreness
from repro.generators import complete_graph, erdos_renyi, grid_2d, hcns
from repro.graphs.csr import CSRGraph
from repro.runtime.simulator import SimRuntime
from repro.structures import (
    AdaptiveHBS,
    FixedBuckets,
    HashBag,
    HierarchicalBuckets,
    NullBuckets,
    PhaseConcurrentHashTable,
    SingleBucket,
    bucket_index,
    bucket_indices,
)
from repro.structures.hbs import SINGLE_KEY_BUCKETS, interval_layout


class TestHashBag:
    def test_insert_extract_multiset(self):
        bag = HashBag(100)
        for v in [5, 3, 5, 7]:
            bag.insert(v)
        out = sorted(bag.extract_all().tolist())
        assert out == [3, 5, 5, 7]

    def test_extract_resets(self):
        bag = HashBag(10)
        bag.insert(1)
        bag.extract_all()
        assert len(bag) == 0
        assert bag.extract_all().size == 0

    def test_reusable_after_extract(self):
        bag = HashBag(10)
        bag.insert(1)
        bag.extract_all()
        bag.insert(2)
        assert list(bag.extract_all()) == [2]

    def test_chunk_growth(self):
        bag = HashBag(10, lam=4)
        for v in range(50):  # overflow the initial capacity estimate
            bag.insert(v)
        assert sorted(bag.extract_all().tolist()) == list(range(50))

    def test_insert_many(self):
        bag = HashBag(1000)
        bag.insert_many(np.arange(300, dtype=np.int64))
        assert len(bag) == 300
        assert sorted(bag.extract_all().tolist()) == list(range(300))

    def test_used_prefix_smaller_than_capacity(self):
        bag = HashBag(100_000)
        bag.insert(1)
        # Extraction scans only the first chunk, not the full geometry...
        assert bag.used_prefix < bag._bounds[-1]
        # ...and allocation is lazy: only the used prefix is backed.
        assert bag._slots.size == bag.used_prefix

    def test_lazy_allocation_grows_with_chunks(self):
        bag = HashBag(10_000, lam=16)
        bag.insert_many(np.arange(2_000))
        assert bag._slots.size >= bag.used_prefix
        assert sorted(bag.extract_all()) == list(range(2_000))
        # Reset after extraction keeps the grown backing store usable.
        bag.insert_many(np.arange(50))
        assert sorted(bag.extract_all()) == list(range(50))

    def test_peek_does_not_remove(self):
        bag = HashBag(10)
        bag.insert(4)
        assert list(bag.peek_all()) == [4]
        assert len(bag) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HashBag(10).insert(-1)
        with pytest.raises(ValueError):
            HashBag(-1)
        with pytest.raises(ValueError):
            HashBag(10, lam=0)

    def test_runtime_charges(self):
        rt = SimRuntime()
        bag = HashBag(100, runtime=rt)
        bag.insert_many(np.arange(10, dtype=np.int64))
        bag.extract_all()
        assert rt.metrics.work > 0


class TestHashTable:
    def test_insert_lookup(self):
        table = PhaseConcurrentHashTable(10)
        assert table.insert(5, 50)
        assert not table.insert(5, 51)  # idempotent, value updated
        assert table.lookup(5) == 51
        assert table.lookup(6) is None

    def test_contains(self):
        table = PhaseConcurrentHashTable(10)
        table.insert(3)
        assert table.contains(3)
        assert not table.contains(4)

    def test_growth(self):
        table = PhaseConcurrentHashTable(4)
        for v in range(200):
            table.insert(v, v * 2)
        assert len(table) == 200
        for v in range(200):
            assert table.lookup(v) == v * 2

    def test_keys_and_items(self):
        table = PhaseConcurrentHashTable(10)
        for v in (3, 1, 4):
            table.insert(v, v + 10)
        assert sorted(table.keys().tolist()) == [1, 3, 4]
        keys, values = table.items()
        assert dict(zip(keys.tolist(), values.tolist())) == {
            1: 11, 3: 13, 4: 14,
        }

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            PhaseConcurrentHashTable(4).insert(-3)
        with pytest.raises(ValueError):
            PhaseConcurrentHashTable(-1)


class TestIntervalLayout:
    def test_layout_starts_with_singles(self):
        layout = interval_layout(0, 100)
        assert layout[:SINGLE_KEY_BUCKETS] == [(i, i) for i in range(8)]

    def test_layout_doubles(self):
        layout = interval_layout(0, 100)
        assert layout[8] == (8, 15)
        assert layout[9] == (16, 31)
        assert layout[10] == (32, 63)

    def test_layout_covers_max_key(self):
        for max_key in (0, 7, 8, 100, 12345):
            layout = interval_layout(0, max_key)
            assert layout[-1][1] >= max_key

    def test_layout_contiguous(self):
        layout = interval_layout(5, 500)
        for (a_lo, a_hi), (b_lo, _) in zip(layout, layout[1:]):
            assert b_lo == a_hi + 1

    def test_bucket_index_scalar(self):
        assert bucket_index(3, 0) == 3
        assert bucket_index(8, 0) == 8
        assert bucket_index(15, 0) == 8
        assert bucket_index(16, 0) == 9
        assert bucket_index(31, 0) == 9
        assert bucket_index(32, 0) == 10

    def test_bucket_index_relative_base(self):
        assert bucket_index(12, 10) == 2
        assert bucket_index(30, 10) == 9  # offset 20 -> [16, 32)

    def test_bucket_index_below_base_raises(self):
        with pytest.raises(ValueError):
            bucket_index(3, 5)

    def test_bucket_indices_matches_scalar(self, rng):
        keys = rng.integers(0, 10_000, size=300)
        base = 0
        vector = bucket_indices(keys, base)
        for key, got in zip(keys, vector):
            assert got == bucket_index(int(key), base)


def _drive(structure, graph: CSRGraph) -> np.ndarray:
    """Drive a full decomposition through a bucket structure directly.

    Uses a minimal offline-style peel so the structure's next_round /
    on_decrements contract is exercised in isolation from the main
    framework code.
    """
    runtime = SimRuntime()
    n = graph.n
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    structure.build(graph, dtilde, peeled, runtime)
    while True:
        step = structure.next_round()
        if step is None:
            break
        k, frontier = step
        while frontier.size:
            coreness[frontier] = k
            peeled[frontier] = True
            targets = graph.gather_neighbors(frontier)
            touched, counts = np.unique(targets, return_counts=True)
            old = dtilde[touched]
            dtilde[touched] = old - counts
            new = dtilde[touched]
            frontier = touched[(old > k) & (new <= k) & (~peeled[touched])]
            survivors = (new > k) & (~peeled[touched])
            structure.on_decrements(touched[survivors], old[survivors])
        structure.round_finished(k)
    return coreness


@pytest.mark.parametrize(
    "factory",
    [SingleBucket, lambda: FixedBuckets(16), lambda: FixedBuckets(4),
     HierarchicalBuckets, AdaptiveHBS],
    ids=["single", "fixed16", "fixed4", "hbs", "adaptive"],
)
class TestBucketStructures:
    def test_er_graph(self, factory):
        g = erdos_renyi(300, 8.0, seed=3)
        assert np.array_equal(_drive(factory(), g), reference_coreness(g))

    def test_grid(self, factory):
        g = grid_2d(15, 15)
        assert np.array_equal(_drive(factory(), g), reference_coreness(g))

    def test_hcns(self, factory):
        g = hcns(40)
        assert np.array_equal(_drive(factory(), g), reference_coreness(g))

    def test_clique(self, factory):
        g = complete_graph(30)
        assert np.array_equal(_drive(factory(), g), reference_coreness(g))

    def test_empty_graph(self, factory):
        g = CSRGraph.from_edges(0, [])
        assert _drive(factory(), g).size == 0

    def test_isolated_vertices(self, factory):
        g = CSRGraph.from_edges(5, [(0, 1)])
        kappa = _drive(factory(), g)
        assert np.array_equal(kappa, reference_coreness(g))


class TestFixedBucketsSpecifics:
    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            FixedBuckets(0)

    def test_name(self):
        assert FixedBuckets(16).name == "16-bucket"

    def test_window_jump_over_gap(self):
        # All degrees are 29 (K30): the window must jump straight there.
        g = complete_graph(30)
        structure = FixedBuckets(16)
        runtime = SimRuntime()
        dtilde = g.degrees.astype(np.int64).copy()
        peeled = np.zeros(g.n, dtype=bool)
        structure.build(g, dtilde, peeled, runtime)
        k, frontier = structure.next_round()
        assert k == 29
        assert frontier.size == 30


class TestAdaptiveSpecifics:
    def test_dense_graph_uses_hbs_immediately(self):
        g = complete_graph(40)  # average degree 39 > theta
        structure = AdaptiveHBS()
        runtime = SimRuntime()
        structure.build(
            g,
            g.degrees.astype(np.int64).copy(),
            np.zeros(g.n, dtype=bool),
            runtime,
        )
        assert structure._use_hbs

    def test_sparse_graph_starts_plain(self):
        g = grid_2d(10, 10)
        structure = AdaptiveHBS()
        runtime = SimRuntime()
        structure.build(
            g,
            g.degrees.astype(np.int64).copy(),
            np.zeros(g.n, dtype=bool),
            runtime,
        )
        assert not structure._use_hbs


class TestNullBuckets:
    def test_next_round_not_implemented(self):
        structure = NullBuckets()
        structure.build(
            CSRGraph.from_edges(2, [(0, 1)]),
            np.array([1, 1], dtype=np.int64),
            np.zeros(2, dtype=bool),
            SimRuntime(),
        )
        with pytest.raises(NotImplementedError):
            structure.next_round()


class TestFixedBucketsWindows:
    """Window mechanics of the Julienne-style fixed buckets."""

    def _build(self, keys):
        g = CSRGraph.from_edges(len(keys), [])
        structure = FixedBuckets(4)
        runtime = SimRuntime()
        dtilde = np.asarray(keys, dtype=np.int64).copy()
        peeled = np.zeros(len(keys), dtype=bool)
        structure.build(g, dtilde, peeled, runtime)
        return structure, dtilde, peeled

    def test_keys_served_in_order(self):
        structure, dtilde, peeled = self._build([5, 1, 9, 1, 5])
        served = []
        while True:
            step = structure.next_round()
            if step is None:
                break
            k, frontier = step
            served.append((k, sorted(frontier.tolist())))
            peeled[frontier] = True
        assert served == [(1, [1, 3]), (5, [0, 4]), (9, [2])]

    def test_window_spans_multiple_rebuilds(self):
        keys = list(range(0, 40, 3))  # 0, 3, 6, ..., 39: many windows
        structure, dtilde, peeled = self._build(keys)
        seen = []
        while True:
            step = structure.next_round()
            if step is None:
                break
            k, frontier = step
            seen.append(k)
            peeled[frontier] = True
        assert seen == keys

    def test_decrease_key_moves_into_window(self):
        structure, dtilde, peeled = self._build([0, 10, 10])
        k, frontier = structure.next_round()
        assert k == 0
        peeled[frontier] = True
        # Vertex 1's key drops into a future window position.
        old = dtilde[[1]].copy()
        dtilde[1] = 2
        structure.on_decrements(np.array([1]), old)
        k, frontier = structure.next_round()
        assert k == 2
        assert list(frontier) == [1]
        peeled[frontier] = True


class TestHBSRegressions:
    def test_hcns_like_key_cascade(self):
        """Regression: keys cascading down through range intervals must
        not be lost or served out of order (the bug the interval design
        fixed — see docs/ALGORITHMS.md)."""
        g = hcns(48)
        structure = HierarchicalBuckets()
        runtime = SimRuntime()
        dtilde = g.degrees.astype(np.int64).copy()
        peeled = np.zeros(g.n, dtype=bool)
        structure.build(g, dtilde, peeled, runtime)
        coreness = _drive_with_prebuilt(structure, g, dtilde, peeled)
        assert np.array_equal(coreness, reference_coreness(g))

    def test_served_keys_non_decreasing(self):
        g = erdos_renyi(250, 12.0, seed=8)
        structure = HierarchicalBuckets()
        runtime = SimRuntime()
        dtilde = g.degrees.astype(np.int64).copy()
        peeled = np.zeros(g.n, dtype=bool)
        structure.build(g, dtilde, peeled, runtime)
        ks = []
        while True:
            step = structure.next_round()
            if step is None:
                break
            k, frontier = step
            ks.append(k)
            # Peel the frontier with batch decrements so keys change.
            coreness_scratch = np.zeros(g.n, dtype=np.int64)
            peeled[frontier] = True
            targets = g.gather_neighbors(frontier)
            if targets.size:
                touched, counts = np.unique(targets, return_counts=True)
                old = dtilde[touched]
                dtilde[touched] = old - counts
                survivors = (dtilde[touched] > k) & (~peeled[touched])
                structure.on_decrements(
                    touched[survivors], old[survivors]
                )
                crossed = touched[
                    (old > k) & (dtilde[touched] <= k) & (~peeled[touched])
                ]
                peeled[crossed] = True
        assert ks == sorted(ks)


def _drive_with_prebuilt(structure, graph, dtilde, peeled):
    """Like _drive but reusing an already-built structure."""
    coreness = np.zeros(graph.n, dtype=np.int64)
    while True:
        step = structure.next_round()
        if step is None:
            break
        k, frontier = step
        while frontier.size:
            coreness[frontier] = k
            peeled[frontier] = True
            targets = graph.gather_neighbors(frontier)
            touched, counts = np.unique(targets, return_counts=True)
            old = dtilde[touched]
            dtilde[touched] = old - counts
            new = dtilde[touched]
            frontier = touched[(old > k) & (new <= k) & (~peeled[touched])]
            survivors = (new > k) & (~peeled[touched])
            structure.on_decrements(touched[survivors], old[survivors])
        structure.round_finished(k)
    return coreness


class TestHashBagCosts:
    def test_extraction_cost_proportional_to_prefix(self):
        """BagExtractAll is O(lambda + t), not O(capacity)."""
        rt = SimRuntime()
        bag = HashBag(1_000_000, runtime=rt)
        bag.insert(7)
        before = rt.metrics.work
        bag.extract_all()
        extract_work = rt.metrics.work - before
        # One element: the scan covers only the first chunk (lambda),
        # orders of magnitude below the million-slot capacity.
        assert extract_work <= 4 * 256
        assert extract_work < 1_000_000 * 0.01

    def test_extraction_cost_grows_with_contents(self):
        costs = []
        for t in (10, 1000, 20_000):
            rt = SimRuntime()
            bag = HashBag(100_000, runtime=rt)
            bag.insert_many(np.arange(t, dtype=np.int64))
            before = rt.metrics.work
            bag.extract_all()
            costs.append(rt.metrics.work - before)
        assert costs[0] < costs[1] < costs[2]
