"""Tests for the experiment harness, tables and figure generators."""

import numpy as np
import pytest

from repro.analysis import (
    ALGORITHMS,
    ExperimentCache,
    fig2_seq_speedup,
    fig5_relative_time,
    fig6_ablation,
    fig7_subrounds,
    fig8_bucketing,
    fig9_burdened_span,
    fig10_scalability,
    fig11_sampling,
    fig12_subgraph,
    fig15_time_vs_julienne,
    format_cell,
    geometric_mean,
    normalize_row,
    render_series,
    render_table,
    render_table2,
    render_table3,
    run,
    run_on,
    table2,
    table3_row,
)
from repro.generators import erdos_renyi

# One small graph keeps the analysis tests quick.
SMALL = ("AF-S",)
TINY_PAIR = ("AF-S", "GL5-S")


class TestExperiments:
    def test_run_records_fields(self):
        record = run("ours", "AF-S")
        assert record.algorithm
        assert record.graph == "AF-S"
        assert record.time_ms > 0
        assert record.seq_ms > record.time_ms  # parallel speedup
        assert record.kmax == 2

    def test_run_on_arbitrary_graph(self):
        g = erdos_renyi(200, 6.0, seed=1)
        record = run_on("bz", g)
        assert record.n == 200

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            run("quantum", "AF-S")

    def test_all_algorithms_runnable(self):
        g = erdos_renyi(150, 5.0, seed=2)
        for name in ALGORITHMS:
            record = run_on(name, g)
            assert record.time_ms >= 0, name

    def test_cache_reuses_runs(self):
        cache = ExperimentCache()
        first = cache.get("ours", "AF-S")
        second = cache.get("ours", "AF-S")
        assert first is second

    def test_best_sequential(self):
        cache = ExperimentCache()
        best = cache.best_sequential_ms("AF-S")
        assert 0 < best <= cache.get("bz", "AF-S").seq_ms


class TestTables:
    def test_table2_row_fields(self):
        rows = table2(graph_names=SMALL)
        row = rows[0]
        assert row.graph == "AF-S"
        assert row.best_algorithm() in ("ours", "julienne", "park", "pkc")
        assert len(row.as_cells()) == 12

    def test_render_table2(self):
        text = render_table2(table2(graph_names=SMALL))
        assert "Table 2" in text
        assert "AF-S" in text
        assert "geomean[road]" in text

    def test_table3_row_all_combinations(self):
        row = table3_row("AF-S")
        assert set(row) == {
            "Plain", "VGC", "Sample", "HBS",
            "VGC+Sample", "VGC+HBS", "Sample+HBS", "All",
        }

    def test_normalize_row(self):
        norm = normalize_row({"a": 2.0, "b": 4.0})
        assert norm == {"a": 1.0, "b": 2.0}

    def test_render_table3(self):
        text = render_table3({"AF-S": table3_row("AF-S")})
        assert "Table 3" in text


class TestFigures:
    def test_fig2(self):
        data = fig2_seq_speedup(graph_names=SMALL)
        assert data["AF-S"]["ours"] > 1.0  # faster than sequential

    def test_fig5(self):
        data = fig5_relative_time(graph_names=SMALL)
        for baseline, relative in data["AF-S"].items():
            assert relative > 0, baseline

    def test_fig6(self):
        points = fig6_ablation(graph_names=SMALL)
        point = points[0]
        assert point.vgc_speedup > 1.0  # road graphs love VGC
        assert point.both_speedup > 1.0

    def test_fig7(self):
        data = fig7_subrounds(graph_names=SMALL)
        without, with_vgc = data["AF-S"]
        assert with_vgc < without

    def test_fig8(self):
        data = fig8_bucketing(graph_names=SMALL)
        assert data["AF-S"]["hbs"] == pytest.approx(1.0)

    def test_fig9(self):
        data = fig9_burdened_span(graph_names=SMALL)
        no_vgc, with_vgc = data["AF-S"]
        assert with_vgc > no_vgc  # VGC improves the burdened span

    def test_fig10(self):
        data = fig10_scalability(graph_names=SMALL)
        curve = data["AF-S"]
        assert curve[0] == (1, pytest.approx(1.0))
        speedups = [s for _, s in curve]
        assert speedups[-1] > 1.0

    def test_fig11(self):
        data = fig11_sampling(graph_names=("TW-S",))
        without, with_sampling = data["TW-S"]
        assert with_sampling < without  # sampling helps on TW

    def test_fig12(self):
        data = fig12_subgraph(
            graph_names=("TW-S",), k_values=(8, 16)
        )
        for k, ours_ms, galois_ms in data["TW-S"]:
            assert ours_ms > 0 and galois_ms > 0

    def test_fig15(self):
        data = fig15_time_vs_julienne(graph_names=SMALL)
        no_vgc, with_vgc = data["AF-S"]
        assert with_vgc > 1.0  # ours with VGC beats Julienne on roads


class TestReporting:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0

    def test_format_cell(self):
        assert format_cell(0.0) == "0"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(12.34) == "12.3"
        assert format_cell(0.1234) == "0.123"
        assert format_cell("x") == "x"

    def test_render_table_alignment(self):
        text = render_table(
            ("a", "bee"), [[1, 2.5], [333, 4]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, rule, two data rows

    def test_render_table_empty(self):
        text = render_table(("a",), [])
        assert "a" in text

    def test_render_series(self):
        text = render_series("s", [("x", 1.0), ("y", 2.0)])
        assert "s" in text and "x: 1.000" in text
