"""Tests for bucketed (framework-style) truss peeling."""

import numpy as np
import pytest

from repro.core.truss import truss_decomposition
from repro.core.truss_parallel import (
    truss_decomposition_bucketed,
    trussness_bucketed,
)
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
)
from repro.graphs.csr import CSRGraph


@pytest.mark.parametrize("buckets", ["1", "16", "hbs", "adaptive"])
class TestAgainstSequential:
    def test_er(self, buckets):
        g = erdos_renyi(120, 8.0, seed=1)
        seq_edges, seq_truss = truss_decomposition(g)
        par_edges, par_truss = trussness_bucketed(g, buckets=buckets)
        assert np.array_equal(seq_edges, par_edges)
        assert np.array_equal(seq_truss, par_truss), buckets

    def test_clique(self, buckets):
        g = complete_graph(8)
        _, par_truss = trussness_bucketed(g, buckets=buckets)
        assert np.all(par_truss == 8)

    def test_triangle_free(self, buckets):
        g = cycle_graph(12)
        _, par_truss = trussness_bucketed(g, buckets=buckets)
        assert np.all(par_truss == 2)

    def test_clustered(self, buckets):
        # Two overlapping cliques.
        edges = [(u, v) for u in range(6) for v in range(u + 1, 6)]
        edges += [(u, v) for u in range(4, 10) for v in range(u + 1, 10)]
        g = CSRGraph.from_edges(10, edges)
        seq_edges, seq_truss = truss_decomposition(g)
        par_edges, par_truss = trussness_bucketed(g, buckets=buckets)
        assert np.array_equal(seq_truss, par_truss)


class TestMetrics:
    def test_subrounds_recorded(self):
        g = erdos_renyi(150, 9.0, seed=2)
        _, result = truss_decomposition_bucketed(g, buckets="hbs")
        assert result.metrics.subrounds > 0
        assert result.metrics.work > 0

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, [])
        edges, result = truss_decomposition_bucketed(g)
        assert edges.shape[0] == 0

    def test_algorithm_label(self):
        g = complete_graph(5)
        _, result = truss_decomposition_bucketed(g, buckets="hbs")
        assert result.algorithm.startswith("truss-")
