"""Tests for generalized (p-function) cores."""

import numpy as np
import pytest

from repro.core.generalized import (
    DegreeFunction,
    WeightedDegreeFunction,
    generalized_cores,
    symmetric_arc_weights,
    weighted_coreness,
)
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
    star_graph,
)


class TestDegreeInstance:
    def test_reproduces_coreness(self, any_graph):
        core = generalized_cores(any_graph, DegreeFunction())
        assert np.array_equal(
            core.astype(np.int64), reference_coreness(any_graph)
        )

    def test_er(self, medium_er):
        core = generalized_cores(medium_er, DegreeFunction())
        assert np.array_equal(
            core.astype(np.int64), reference_coreness(medium_er)
        )


class TestWeightedCores:
    def test_unit_weights_match_coreness(self, small_er):
        weights = np.ones(small_er.m)
        core = weighted_coreness(small_er, weights)
        assert np.array_equal(
            core.astype(np.int64), reference_coreness(small_er)
        )

    def test_scaling_weights_scales_cores(self, small_er):
        weights = np.ones(small_er.m)
        base = weighted_coreness(small_er, weights)
        double = weighted_coreness(small_er, 2.0 * weights)
        assert np.allclose(double, 2.0 * base)

    def test_heavy_clique_dominates(self):
        # K4 with weight 10 edges plus a weight-1 path: the clique's
        # s-core level is far above the path's.
        g = complete_graph(4)
        from repro.graphs.transform import all_edges, add_edges
        from repro.graphs.csr import CSRGraph

        edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        edges += [(3, 4), (4, 5)]
        g = CSRGraph.from_edges(6, edges)
        weights = symmetric_arc_weights(
            g, lambda u, v: 10.0 if u < 4 and v < 4 else 1.0
        )
        core = weighted_coreness(g, weights)
        assert core[0] == pytest.approx(30.0)  # 3 clique edges x 10
        assert core[5] == pytest.approx(1.0)

    def test_negative_weights_rejected(self, triangle):
        with pytest.raises(ValueError):
            WeightedDegreeFunction(-np.ones(triangle.m))

    def test_weight_shape_checked(self, triangle):
        func = WeightedDegreeFunction(np.ones(2))
        with pytest.raises(ValueError):
            func.initial(triangle)


class TestGeneralizedInvariants:
    def test_core_values_monotone_under_edge_addition(self):
        """Adding an edge never lowers any generalized-degree core."""
        from repro.graphs.transform import add_edges

        g = erdos_renyi(100, 4.0, seed=2)
        before = generalized_cores(g, DegreeFunction())
        g2 = add_edges(g, [(0, 1)]) if g.n >= 2 else g
        after = generalized_cores(g2, DegreeFunction())
        assert np.all(after >= before - 1e-9)

    def test_star_and_path(self):
        star_core = generalized_cores(star_graph(10), DegreeFunction())
        assert np.all(star_core == 1.0)
        path_core = generalized_cores(path_graph(10), DegreeFunction())
        assert np.all(path_core == 1.0)

    def test_feasibility(self, small_er):
        """Each vertex keeps p >= its level inside its own level set."""
        core = generalized_cores(small_er, DegreeFunction())
        for v in range(small_er.n):
            inside = sum(
                1
                for u in small_er.neighbors(v)
                if core[u] >= core[v]
            )
            assert inside >= core[v]

    def test_empty_graph(self):
        from repro.generators import empty_graph

        core = generalized_cores(empty_graph(3), DegreeFunction())
        assert np.all(core == 0.0)
