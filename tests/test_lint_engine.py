"""The lint engine: module graph, call graph, taint, cache, R007, CLI.

These tests exercise the whole-program layer underneath the rules:
name resolution across modules, the charge-reachability and taint
fixpoints, the content-hash incremental cache (including the warm/cold
speedup the Makefile relies on), the baseline and SARIF surfaces, and
the R007 native-parity checks against both the real embedded kernel and
deliberately drifted fixtures.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.lint.baseline import filter_new, load_baseline, write_baseline
from repro.lint.cli import main
from repro.lint.engine.modulegraph import Module, module_name_for
from repro.lint.engine.program import Program
from repro.lint.reporters import format_sarif
from repro.lint.runner import lint_source, run_lint

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"


def build(*files: tuple[str, str]) -> Program:
    """A Program from (path, source) pairs (sources are dedented)."""
    return Program(
        Module.parse(path, textwrap.dedent(source))
        for path, source in files
    )


def write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


# ----------------------------------------------------------------------
# Module graph
# ----------------------------------------------------------------------
class TestModuleGraph:
    def test_module_names_follow_roots(self):
        assert module_name_for("src/repro/core/peel.py") == "repro.core.peel"
        assert module_name_for("tests/test_lint.py") == "tests.test_lint"
        assert module_name_for("examples/demo.py") == "examples.demo"
        assert module_name_for("src/repro/__init__.py") == "repro"

    def test_import_aliases_and_project_deps(self):
        program = build(
            (
                "src/repro/a.py",
                """
                import repro.b as bee
                from repro.c import helper as h
                """,
            ),
            ("src/repro/b.py", "x = 1\n"),
            ("src/repro/c.py", "def helper():\n    return 1\n"),
        )
        module = program.module_named("repro.a")
        assert module.import_aliases["bee"] == "repro.b"
        assert module.import_aliases["h"] == "repro.c.helper"
        assert program.deps("repro.a") == {"repro.b", "repro.c"}

    def test_relative_imports_resolve_against_package(self):
        program = build(
            (
                "src/repro/core/peel.py",
                "from .frontier import advance\nfrom ..runtime import sim\n",
            ),
            ("src/repro/core/frontier.py", "def advance():\n    pass\n"),
            ("src/repro/runtime/sim.py", "x = 1\n"),
        )
        deps = program.deps("repro.core.peel")
        assert "repro.core.frontier" in deps
        assert "repro.runtime" in deps or "repro.runtime.sim" in deps


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_direct_and_method_resolution(self):
        program = build(
            (
                "src/repro/core/x.py",
                """
                class Peeler:
                    def charge(self, runtime):
                        runtime.sequential(1.0, tag="t")

                    def run(self, runtime):
                        self.charge(runtime)

                def top(runtime):
                    p = Peeler()
                    p.run(runtime)
                """,
            )
        )
        graph = program.callgraph
        assert graph.can_charge("repro.core.x.Peeler.charge")
        assert graph.can_charge("repro.core.x.Peeler.run")
        assert graph.can_charge("repro.core.x.top")

    def test_aliased_import_resolution(self):
        program = build(
            (
                "src/repro/core/a.py",
                """
                import repro.core.b as helpers
                from repro.core.b import charge_all as ca

                def f(runtime):
                    helpers.charge_all(runtime)

                def g(runtime):
                    ca(runtime)
                """,
            ),
            (
                "src/repro/core/b.py",
                """
                def charge_all(runtime):
                    runtime.parallel_for(1.0, count=1, tag="x")
                """,
            ),
        )
        graph = program.callgraph
        assert graph.can_charge("repro.core.a.f")
        assert graph.can_charge("repro.core.a.g")

    def test_callback_passed_to_helper_counts_as_edge(self):
        # Higher-order: the task body is passed, not called, yet charge
        # reachability must flow through it.
        program = build(
            (
                "src/repro/core/h.py",
                """
                def run_tasks(body, runtime, n):
                    for i in range(n):
                        body(runtime, i)

                def task(runtime, i):
                    runtime.sequential(1.0, tag="task")

                def driver(runtime):
                    run_tasks(task, runtime, 4)
                """,
            )
        )
        graph = program.callgraph
        assert graph.can_charge("repro.core.h.driver")

    def test_stored_attribute_method_resolution(self):
        program = build(
            (
                "src/repro/core/s.py",
                """
                class Ledger:
                    def charge(self, runtime):
                        runtime.sequential(1.0, tag="t")

                class Holder:
                    def __init__(self):
                        self.ledger = Ledger()

                    def go(self, runtime):
                        self.ledger.charge(runtime)
                """,
            )
        )
        assert program.callgraph.can_charge("repro.core.s.Holder.go")

    def test_non_charging_chain_stays_false(self):
        program = build(
            (
                "src/repro/core/n.py",
                """
                def a(x):
                    return b(x)

                def b(x):
                    return x + 1
                """,
            )
        )
        graph = program.callgraph
        assert not graph.can_charge("repro.core.n.a")
        assert not graph.can_charge("repro.core.n.b")

    def test_contended_params_flow_through_helpers(self):
        program = build(
            (
                "src/repro/core/c.py",
                """
                from repro.runtime.atomics import batch_decrement

                def inner(values, targets, k):
                    return batch_decrement(values, targets, k)

                def outer(shared, targets, k):
                    return inner(shared, targets, k)
                """,
            )
        )
        graph = program.callgraph
        inner = graph.functions["repro.core.c.inner"]
        outer = graph.functions["repro.core.c.outer"]
        assert graph.contending_params(inner) == frozenset({0})
        assert graph.contending_params(outer) == frozenset({0})


# ----------------------------------------------------------------------
# Taint dataflow (one fixture per source kind)
# ----------------------------------------------------------------------
class TestTaintDataflow:
    def _r003(self, source: str, path="src/repro/core/t.py"):
        return lint_source(
            textwrap.dedent(source), path=path, select=["R003"]
        )

    def test_wall_clock_taint_reaches_charge_through_call(self):
        findings = self._r003(
            """
            import time

            def log_cost(runtime, value):
                runtime.sequential(value, tag="t")

            def outer(runtime):
                elapsed = time.perf_counter()
                log_cost(runtime, elapsed)
            """
        )
        messages = [f.message for f in findings]
        assert any("wall-clock value reaches" in m for m in messages)

    def test_rng_taint_via_return_summary(self):
        findings = self._r003(
            """
            import numpy as np

            def draw():
                return np.random.rand(4)

            def outer(runtime):
                noise = draw()
                runtime.record_samples(noise)
            """
        )
        assert any(
            "rng value reaches record_samples()" in f.message
            for f in findings
        )

    def test_unordered_iteration_reaching_ledger_is_flagged(self):
        findings = self._r003(
            """
            def outer(runtime, weights):
                seen = {1, 2, 3}
                total = 0.0
                for v in seen:
                    total = total + weights[v]
                runtime.sequential(total, tag="sum")
            """
        )
        assert any(
            "unordered-iter value reaches sequential()" in f.message
            for f in findings
        )

    def test_sorted_sanitizes_unordered_taint(self):
        findings = self._r003(
            """
            def outer(runtime, weights):
                seen = {1, 2, 3}
                total = 0.0
                for v in sorted(seen):
                    total = total + weights[v]
                runtime.sequential(total, tag="sum")
            """
        )
        assert findings == []

    def test_membership_test_is_not_tainted(self):
        findings = self._r003(
            """
            def outer(runtime, items, key):
                seen = {1, 2, 3}
                flag = key in seen
                runtime.sequential(1.0 if flag else 2.0, tag="x")
            """
        )
        assert findings == []

    def test_dict_comprehension_source(self):
        findings = self._r003(
            """
            def outer(runtime, mapping):
                d = {1: "a", 2: "b"}
                order = [k for k in d]
                runtime.record_order(order)
            """
        )
        assert any("unordered-iter" in f.message for f in findings)

    def test_np_unique_sanitizes(self):
        findings = self._r003(
            """
            import numpy as np

            def outer(runtime, weights):
                seen = {1, 2, 3}
                idx = np.unique(list(seen))
                runtime.sequential(weights[idx].sum(), tag="x")
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# R004 disjointness refinements
# ----------------------------------------------------------------------
class TestR004Disjointness:
    def _r004(self, source: str):
        return lint_source(
            textwrap.dedent(source),
            path="src/repro/core/p.py",
            select=["R004"],
        )

    def test_unique_index_write_is_clean(self):
        findings = self._r004(
            """
            import numpy as np
            from repro.runtime.atomics import batch_decrement

            def peel(dtilde, frontier, k):
                outcome = batch_decrement(dtilde, frontier, k)
                touched = np.unique(frontier)
                dtilde[touched] = 0
                return outcome
            """
        )
        assert findings == []

    def test_boolean_mask_write_is_clean(self):
        findings = self._r004(
            """
            from repro.runtime.atomics import batch_decrement

            def peel(dtilde, frontier, k):
                outcome = batch_decrement(dtilde, frontier, k)
                dtilde[dtilde < k] = 0
                return outcome
            """
        )
        assert findings == []

    def test_repeatable_index_write_is_flagged(self):
        findings = self._r004(
            """
            from repro.runtime.atomics import batch_decrement

            def peel(dtilde, frontier, k):
                outcome = batch_decrement(dtilde, frontier, k)
                dtilde[frontier] -= 1
                return outcome
            """
        )
        assert [f.rule_id for f in findings] == ["R004"]

    def test_sharing_through_resolved_helper_is_seen(self):
        findings = self._r004(
            """
            from repro.runtime.atomics import batch_decrement

            def helper(values, targets, k):
                return batch_decrement(values, targets, k)

            def peel(dtilde, frontier, k):
                counts = helper(dtilde, frontier, k)
                dtilde[frontier] -= 1
                return counts
            """
        )
        assert [f.rule_id for f in findings] == ["R004"]


# ----------------------------------------------------------------------
# R007 native parity
# ----------------------------------------------------------------------
GOOD_NATIVE = '''
_SOURCE = r"""
void vgc_peel_tasks(
    const long *indptr,
    long *dtilde,
    long n_tasks,
    long k,
    long *nv_out,
    long *counters)
{
    counters[0] = 0;
    counters[1] = 0;
}
"""

COST_COUNTERS = {"nv": "vertex_op"}

import ctypes
import numpy as np

def _ptr(a):
    return a

def run(lib, indptr, dtilde, n_tasks, k, nv):
    fn = lib.vgc_peel_tasks
    fn.argtypes = [ctypes.c_void_p] * 2 + [ctypes.c_int64] * 2 + [
        ctypes.c_void_p
    ] * 2
    counters = np.zeros(2, dtype=np.int64)
    lib.vgc_peel_tasks(
        _ptr(indptr), _ptr(dtilde), n_tasks, k, _ptr(nv), _ptr(counters)
    )
    dp, ep = (int(x) for x in counters)
    return dp, ep
'''

GOOD_COST_MODEL = """
from dataclasses import dataclass

@dataclass(frozen=True)
class CostModel:
    vertex_op: float = 1.5
    edge_op: float = 1.0
"""

MULTI_NATIVE = '''
_SOURCE = r"""
void vgc_peel_tasks(
    const long *indptr,
    long *dtilde,
    long n_tasks,
    long k,
    long *nv_out,
    long *counters)
{
    counters[0] = 0;
    counters[1] = 0;
}

void pkc_chain_drain(
    const long *indptr,
    long *dtilde,
    long *nv_out,
    long *ne_out,
    long n_front,
    long *counters)
{
    counters[0] = 0;
    counters[1] = 0;
}
"""

COST_COUNTERS = {"nv": "vertex_op"}
PKC_COST_COUNTERS = {"nv": "vertex_op", "ne": ["edge_op", "atomic_op"]}

import ctypes
import numpy as np

def _ptr(a):
    return a

def run(lib, indptr, dtilde, n_tasks, k, nv):
    fn = lib.vgc_peel_tasks
    fn.argtypes = [ctypes.c_void_p] * 2 + [ctypes.c_int64] * 2 + [
        ctypes.c_void_p
    ] * 2
    counters = np.zeros(2, dtype=np.int64)
    lib.vgc_peel_tasks(
        _ptr(indptr), _ptr(dtilde), n_tasks, k, _ptr(nv), _ptr(counters)
    )
    dp, ep = (int(x) for x in counters)
    return dp, ep

def run_pkc(lib, indptr, dtilde, nv, n_front):
    pkc = lib.pkc_chain_drain
    pkc.argtypes = [ctypes.c_void_p] * 4 + [ctypes.c_int64] * 1 + [
        ctypes.c_void_p
    ] * 1
    counters = np.zeros(2, dtype=np.int64)
    lib.pkc_chain_drain(
        _ptr(indptr), _ptr(dtilde), _ptr(nv), _ptr(nv), n_front,
        _ptr(counters)
    )
    tp, claimed = (int(x) for x in counters)
    return tp, claimed
'''

PKC_COST_MODEL = """
from dataclasses import dataclass

@dataclass(frozen=True)
class CostModel:
    vertex_op: float = 1.5
    edge_op: float = 1.0
    atomic_op: float = 2.0
"""

# Same kernel driven through the cached-pointer idiom: an `sp` alias
# bound to `scratch.ptr` (falling back to `_ptr`), a pointer local
# assigned per branch, and a conditional pointer argument.
CACHED_PTR_NATIVE = '''
_SOURCE = r"""
void vgc_peel_tasks(
    const long *indptr,
    long *dtilde,
    long n_tasks,
    long k,
    long *nv_out,
    long *counters)
{
    counters[0] = 0;
    counters[1] = 0;
}
"""

COST_COUNTERS = {"nv": "vertex_op"}

import ctypes
import numpy as np

def _ptr(a):
    return a

def run(lib, indptr, dtilde, n_tasks, k, nv, scratch=None):
    fn = lib.vgc_peel_tasks
    fn.argtypes = [ctypes.c_void_p] * 2 + [ctypes.c_int64] * 2 + [
        ctypes.c_void_p
    ] * 2
    counters = np.zeros(2, dtype=np.int64)
    sp = scratch.ptr if scratch is not None else _ptr
    if scratch is not None:
        dtilde_p = scratch.ptr(dtilde)
    else:
        dtilde_p = _ptr(dtilde)
    lib.vgc_peel_tasks(
        sp(indptr), dtilde_p, n_tasks, k,
        sp(nv) if nv is not None else None, _ptr(counters)
    )
    dp, ep = (int(x) for x in counters)
    return dp, ep
'''


class TestR007NativeParity:
    def _lint(self, tmp_path, native: str, cost_model: str = GOOD_COST_MODEL):
        write_tree(
            tmp_path,
            {
                "src/repro/perf/native.py": native,
                "src/repro/runtime/cost_model.py": cost_model,
            },
        )
        return run_lint([tmp_path / "src"], select=["R007"]).findings

    def test_real_kernel_passes(self):
        findings = run_lint(
            [SRC / "perf", SRC / "runtime"], select=["R007"]
        ).findings
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_consistent_fixture_passes(self, tmp_path):
        assert self._lint(tmp_path, GOOD_NATIVE) == []

    def test_drifted_cost_constant_fails(self, tmp_path):
        drifted = GOOD_COST_MODEL.replace("1.5", "0.3")
        findings = self._lint(tmp_path, GOOD_NATIVE, drifted)
        assert any("dyadic" in f.message for f in findings)

    def test_argtypes_mismatch_fails(self, tmp_path):
        broken = GOOD_NATIVE.replace(
            "[ctypes.c_void_p] * 2 + [ctypes.c_int64] * 2",
            "[ctypes.c_void_p] * 3 + [ctypes.c_int64] * 1",
        )
        findings = self._lint(tmp_path, broken)
        assert any("argtypes" in f.message for f in findings)

    def test_counter_width_mismatch_fails(self, tmp_path):
        broken = GOOD_NATIVE.replace("np.zeros(2", "np.zeros(3")
        findings = self._lint(tmp_path, broken)
        assert any("counters" in f.message for f in findings)

    def test_unknown_counter_key_fails(self, tmp_path):
        broken = GOOD_NATIVE.replace(
            'COST_COUNTERS = {"nv": "vertex_op"}',
            'COST_COUNTERS = {"nz": "vertex_op"}',
        )
        findings = self._lint(tmp_path, broken)
        assert any("nz_out" in f.message for f in findings)

    def test_closed_form_drift_fails(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/perf/native.py": GOOD_NATIVE,
                "src/repro/runtime/cost_model.py": GOOD_COST_MODEL,
                "src/repro/perf/kernels.py": """
                def vgc_peel_tasks_native(state, model, nv, ne):
                    task_costs = model.edge_op * ne
                    return task_costs
                """,
            },
        )
        findings = run_lint([tmp_path / "src"], select=["R007"]).findings
        assert any("COST_COUNTERS" in f.message for f in findings)

    def test_multi_kernel_fixture_passes(self, tmp_path):
        assert self._lint(tmp_path, MULTI_NATIVE, PKC_COST_MODEL) == []

    def test_cached_pointer_idiom_passes(self, tmp_path):
        findings = self._lint(tmp_path, CACHED_PTR_NATIVE)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_raw_pointer_argument_fails(self, tmp_path):
        broken = GOOD_NATIVE.replace("_ptr(dtilde)", "dtilde")
        findings = self._lint(tmp_path, broken)
        assert any("pointer expression" in f.message for f in findings)

    def test_unbound_alias_call_fails(self, tmp_path):
        # A call through a name never bound to a pointer maker is not a
        # pointer expression.
        broken = CACHED_PTR_NATIVE.replace(
            "sp = scratch.ptr if scratch is not None else _ptr",
            "sp = some_other_helper",
        )
        findings = self._lint(tmp_path, broken)
        assert any("pointer expression" in f.message for f in findings)

    def test_second_kernel_argtypes_mismatch_fails(self, tmp_path):
        broken = MULTI_NATIVE.replace(
            "[ctypes.c_void_p] * 4 + [ctypes.c_int64] * 1",
            "[ctypes.c_void_p] * 3 + [ctypes.c_int64] * 2",
        )
        findings = self._lint(tmp_path, broken, PKC_COST_MODEL)
        assert any("argtypes" in f.message for f in findings)

    def test_list_valued_counter_key_fails(self, tmp_path):
        broken = MULTI_NATIVE.replace(
            '"ne": ["edge_op", "atomic_op"]',
            '"nx": ["edge_op", "atomic_op"]',
        )
        findings = self._lint(tmp_path, broken, PKC_COST_MODEL)
        assert any("nx_out" in f.message for f in findings)

    def test_pkc_closed_form_drift_fails(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/perf/native.py": MULTI_NATIVE,
                "src/repro/runtime/cost_model.py": PKC_COST_MODEL,
                "src/repro/perf/kernels.py": """
                def pkc_thread_works(model, nv, ne):
                    task_costs = model.vertex_op * nv + model.edge_op * ne
                    return task_costs
                """,
            },
        )
        findings = run_lint([tmp_path / "src"], select=["R007"]).findings
        assert any("PKC_COST_COUNTERS" in f.message for f in findings)


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
CACHE_TREE = {
    "src/repro/core/alpha.py": """
        from repro.core.beta import charge

        def run(runtime, n):
            charge(runtime, n)
    """,
    "src/repro/core/beta.py": """
        def charge(runtime, n):
            runtime.sequential(float(n), tag="beta")
    """,
    "src/repro/core/gamma.py": """
        def pure(x):
            return x + 1
    """,
}


class TestIncrementalCache:
    def test_warm_run_hits_every_module(self, tmp_path):
        write_tree(tmp_path, CACHE_TREE)
        cache = tmp_path / ".lint-cache"
        cold = run_lint([tmp_path / "src"], cache_dir=cache)
        warm = run_lint([tmp_path / "src"], cache_dir=cache)
        assert cold.stats.cache_hits == 0
        assert cold.stats.files_analyzed == 3
        assert warm.stats.cache_hits == 3
        assert warm.stats.files_analyzed == 0
        assert warm.findings == cold.findings

    def test_edit_invalidates_dependents_only(self, tmp_path):
        write_tree(tmp_path, CACHE_TREE)
        cache = tmp_path / ".lint-cache"
        run_lint([tmp_path / "src"], cache_dir=cache)
        beta = tmp_path / "src/repro/core/beta.py"
        beta.write_text(
            beta.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        again = run_lint([tmp_path / "src"], cache_dir=cache)
        # beta changed; alpha imports beta; gamma is untouched.
        assert again.stats.files_analyzed == 2
        assert again.stats.cache_hits == 1

    def test_cached_findings_replay_without_reanalysis(self, tmp_path):
        tree = dict(CACHE_TREE)
        tree["src/repro/core/dirty.py"] = """
            def f(runtime, n):
                runtime.sequential(float(n))
        """
        write_tree(tmp_path, tree)
        cache = tmp_path / ".lint-cache"
        cold = run_lint([tmp_path / "src"], cache_dir=cache)
        warm = run_lint([tmp_path / "src"], cache_dir=cache)
        assert [f.rule_id for f in cold.findings] == ["R002"]
        assert warm.findings == cold.findings
        assert warm.stats.files_analyzed == 0

    def test_warm_run_is_at_least_3x_faster_than_cold(self, tmp_path):
        # A tree big enough that analysis dominates process overheads.
        tree = {}
        for i in range(24):
            dep = f"from repro.core.m{i - 1} import f{i - 1}\n" if i else ""
            tree[f"src/repro/core/m{i}.py"] = (
                f"{dep}"
                f"def f{i}(runtime, n):\n"
                f"    runtime.sequential(float(n), tag='m{i}')\n"
            )
        write_tree(tmp_path, tree)
        cache = tmp_path / ".lint-cache"
        cold = run_lint([tmp_path / "src"], cache_dir=cache)
        warm = run_lint([tmp_path / "src"], cache_dir=cache)
        assert warm.stats.cache_hits == 24
        assert warm.stats.wall_s < cold.stats.wall_s / 3, (
            f"warm {warm.stats.wall_s:.4f}s vs cold {cold.stats.wall_s:.4f}s"
        )

    def test_select_bypasses_cache(self, tmp_path):
        write_tree(tmp_path, CACHE_TREE)
        cache = tmp_path / ".lint-cache"
        run_lint([tmp_path / "src"], cache_dir=cache)
        selected = run_lint(
            [tmp_path / "src"], select=["R002"], cache_dir=cache
        )
        assert selected.stats.cache_hits == 0


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_suppresses_recorded_findings(self, tmp_path):
        findings = lint_source(
            "def f(runtime, n):\n    runtime.sequential(float(n))\n",
            path="src/repro/core/b.py",
        )
        assert findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        assert filter_new(findings, baseline) == []

    def test_new_findings_survive_filter(self, tmp_path):
        old = lint_source(
            "def f(runtime, n):\n    runtime.sequential(float(n))\n",
            path="src/repro/core/b.py",
        )
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, old)
        # Fingerprints cover (path, rule, message), so only a genuinely
        # different finding — not a moved line — escapes the baseline.
        new = lint_source("import random\n", path="src/repro/core/b.py")
        assert filter_new(new, load_baseline(baseline_file)) == new

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(ROOT / ".lint-baseline.json")
        assert sum(baseline.values()) == 0

    def test_cli_baseline_flow(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        baseline_file = tmp_path / "bl.json"
        assert (
            main(
                [
                    str(bad),
                    "--baseline",
                    str(baseline_file),
                    "--write-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main([str(bad), "--baseline", str(baseline_file)]) == 0
        assert main([str(bad)]) == 1


# ----------------------------------------------------------------------
# Reporters and CLI surface
# ----------------------------------------------------------------------
class TestReportersAndCli:
    def test_sarif_document_shape(self):
        findings = lint_source(
            "import random\n", path="src/repro/core/r.py"
        )
        doc = json.loads(format_sarif(findings))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"R001", "R007"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "R003"
        assert result["locations"][0]["physicalLocation"]["region"][
            "startLine"
        ] == 1

    def test_json_stats_payload(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main(["--format", "json", str(clean)]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["stats"]
        assert stats["files_total"] == 1
        assert stats["files_analyzed"] == 1
        assert stats["cache_hits"] == 0
        assert stats["wall_s"] >= 0
        assert stats["rule_counts"] == {}

    def test_cli_cache_flag(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "cache"
        assert main(["--cache", str(cache), str(clean)]) == 0
        capsys.readouterr()
        assert main(["--cache", str(cache), "--format", "json", str(clean)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["cache_hits"] == 1

    def test_cli_only_filters_reported_paths(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "pkg/bad_one.py": "import random\n",
                "pkg/bad_two.py": "import random\n",
            },
        )
        code = main(
            [
                str(tmp_path / "pkg"),
                "--only",
                str(tmp_path / "pkg" / "bad_one.py"),
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["path"].endswith("bad_one.py")

    def test_sarif_cli_format(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main(["--format", "sarif", str(clean)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []
