"""Kernel equivalence for the baseline engines (pkc / park / julienne).

PR 8 routed the baselines' hot loops through the shared flat kernels:
PKC's per-round chain drain became one batched wave-decomposition call
(``pkc_chain_drain`` / its embedded-C twin), and ParK's and Julienne's
scan-frontier rounds go through ``threshold_frontier`` /
``scan_peel_round``.  The ``REPRO_KERNELS`` switch must therefore be
unobservable for the baselines exactly as it is for our framework:
identical coreness arrays and an identical stable metrics ledger (work,
span, contention, subrounds) on every graph family under every mode.

Mirrors ``test_perf_kernels.py``: full decompositions across generator
families x seeds, fast modes compared field-for-field against the
reference loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import julienne_kcore, park_kcore, pkc_kcore
from repro.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    hcns,
    knn_graph,
    power_law_with_hub,
    road_like,
)
from repro.perf import (
    KERNELS_ENV,
    NATIVE,
    REFERENCE,
    THRESHOLD_ENV,
    VECTORIZED,
    native_available,
)
from repro.runtime.cost_model import DEFAULT_COST_MODEL

#: One randomized builder per generator family (seeded — the *pair* of
#: runs must see the identical graph, not two draws of it).
GRAPHS = {
    "er": lambda seed: erdos_renyi(240, 5.0, seed=seed),
    "hub": lambda seed: power_law_with_hub(
        300, 3, hub_count=2, hub_degree=80, seed=seed
    ),
    "ba": lambda seed: barabasi_albert(320, 5, seed=seed, attach_min=2),
    "grid": lambda seed: grid_2d(14 + seed % 5, 18),
    "road": lambda seed: road_like(400, seed=seed),
    "knn": lambda seed: knn_graph(260, 4, dim=2, clusters=5, seed=seed),
    "hcns": lambda seed: hcns(32 + 8 * (seed % 3)),
}

ENGINES = {
    "pkc": pkc_kcore,
    "park": park_kcore,
    "julienne": julienne_kcore,
}

#: The non-reference modes under test; native only where it can build.
FAST_MODES = [VECTORIZED] + ([NATIVE] if native_available() else [])


def _run(monkeypatch, mode: str, engine: str, family: str, seed: int):
    monkeypatch.setenv(KERNELS_ENV, mode)
    graph = GRAPHS[family](seed)
    result = ENGINES[engine](graph, DEFAULT_COST_MODEL)
    return (
        result.coreness,
        result.metrics.to_stable_dict(DEFAULT_COST_MODEL),
    )


@pytest.mark.parametrize("mode", FAST_MODES)
@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("family", sorted(GRAPHS))
def test_baseline_modes_bit_exact(monkeypatch, family, engine, mode):
    for seed in (3, 104):
        core_f, metrics_f = _run(monkeypatch, mode, engine, family, seed)
        core_r, metrics_r = _run(
            monkeypatch, REFERENCE, engine, family, seed
        )
        assert np.array_equal(core_f, core_r), (engine, family, seed)
        assert metrics_f == metrics_r, (engine, family, seed)


@pytest.mark.parametrize("threshold", ["0", "7", "1000000"])
def test_pkc_threshold_invariance(monkeypatch, threshold):
    """PKC's scalar/batched wave split point never changes the payload."""
    monkeypatch.setenv(THRESHOLD_ENV, threshold)
    core_t, metrics_t = _run(monkeypatch, VECTORIZED, "pkc", "hub", 3)
    monkeypatch.delenv(THRESHOLD_ENV)
    core_d, metrics_d = _run(monkeypatch, VECTORIZED, "pkc", "hub", 3)
    assert np.array_equal(core_t, core_d)
    assert metrics_t == metrics_d


def test_pkc_contention_ledger_survives_batching(monkeypatch):
    """The contention multiset PKC reports is mode-independent.

    The batched drain counts per-target decrement multiplicities with a
    scratch first-touch pass rather than replaying each atomic; the
    max/sum the ledger consumes must still match the reference exactly.
    """
    graph = GRAPHS["hub"](3)
    monkeypatch.setenv(KERNELS_ENV, REFERENCE)
    ref = pkc_kcore(graph, DEFAULT_COST_MODEL)
    monkeypatch.setenv(KERNELS_ENV, VECTORIZED)
    fast = pkc_kcore(graph, DEFAULT_COST_MODEL)
    ref_stable = ref.metrics.to_stable_dict(DEFAULT_COST_MODEL)
    fast_stable = fast.metrics.to_stable_dict(DEFAULT_COST_MODEL)
    assert ref_stable["max_contention"] == fast_stable["max_contention"]
    assert ref_stable == fast_stable
