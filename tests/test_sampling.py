"""Tests for the sampling scheme (Alg. 4/5) including failure injection."""

import math

import numpy as np
import pytest

from repro.core.framework import FrameworkConfig, decompose
from repro.core.sampling import (
    SamplingConfig,
    SamplingState,
    default_mu,
)
from repro.core.verify import reference_coreness
from repro.errors import SamplingRestartError
from repro.generators import complete_graph, power_law_with_hub, star_graph
from repro.runtime.simulator import SimRuntime


def _make_state(graph, config=None, k=0):
    runtime = SimRuntime()
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(graph.n, dtype=bool)
    coreness = np.zeros(graph.n, dtype=np.int64)
    state = SamplingState(graph, dtilde, peeled, runtime, config=config)
    state.attach_coreness(coreness)
    return state


class TestDefaults:
    def test_default_mu_formula(self):
        n = 10_000
        assert default_mu(n) == math.ceil(4 * 3 * math.log(n))

    def test_default_mu_floor(self):
        assert default_mu(1) >= 8

    def test_resolve_mu_override(self):
        config = SamplingConfig(mu=50)
        assert config.resolve_mu(10**6) == 50

    def test_threshold_keeps_rates_below_one(self, hub_graph):
        state = _make_state(hub_graph)
        assert state.threshold >= state.mu / (1 - state.r)


class TestSetSampler:
    def test_only_high_degree_enters_sample_mode(self, hub_graph):
        state = _make_state(hub_graph)
        state.initialize()
        sampled = np.nonzero(state.mode)[0]
        assert sampled.size > 0
        assert np.all(state.dtilde[sampled] > state.threshold)

    def test_rates_in_unit_interval(self, hub_graph):
        state = _make_state(hub_graph)
        state.initialize()
        sampled = state.mode
        assert np.all(state.rate[sampled] > 0)
        assert np.all(state.rate[sampled] <= 1.0)

    def test_headroom_condition(self, hub_graph):
        """No vertex enters sample mode when r*d <= k."""
        state = _make_state(hub_graph)
        k = int(hub_graph.max_degree * state.r) + 1
        state.set_sampler_bulk(
            np.arange(hub_graph.n, dtype=np.int64), k
        )
        assert not state.mode.any()

    def test_low_degree_graph_never_samples(self):
        state = _make_state(star_graph(100))
        state.initialize()
        assert not state.mode.any()


class TestValidate:
    def test_fresh_samplers_pass(self, hub_graph):
        state = _make_state(hub_graph)
        state.initialize()
        assert state.validate_failures(0).size == 0

    def test_saturated_counter_fails(self, hub_graph):
        state = _make_state(hub_graph)
        state.initialize()
        sampled = np.nonzero(state.mode)[0]
        v = int(sampled[0])
        state.cnt[v] = state.mu  # as if many samples landed
        failures = state.validate_failures(0)
        assert v in failures

    def test_headroom_failure(self, hub_graph):
        state = _make_state(hub_graph)
        state.initialize()
        sampled = np.nonzero(state.mode)[0]
        v = int(sampled[0])
        k = int(state.dtilde[v] * state.r) + 1  # r * d <= k now
        failures = state.validate_failures(k)
        assert v in failures


class TestResample:
    def test_recount_is_exact(self, hub_graph):
        state = _make_state(hub_graph)
        state.initialize()
        sampled = np.nonzero(state.mode)[0]
        # Peel some neighbors behind the sampler's back.
        victim = int(sampled[0])
        neighbors = hub_graph.neighbors(victim)
        state.peeled[neighbors[:10]] = True
        state.resample_bulk(np.array([victim]), k=0)
        expected = int((~state.peeled[neighbors]).sum())
        assert state.dtilde[victim] == expected

    def test_low_vertices_returned(self):
        g = complete_graph(300)  # degree 299 everywhere
        state = _make_state(g, config=SamplingConfig(threshold=128))
        state.initialize()
        v = 0
        assert state.mode[v]
        # Remove enough neighbors that v's exact degree drops below k;
        # they were peeled in the *current* round (coreness == k), which
        # is the legitimate case (no Las-Vegas error).
        state.peeled[1:250] = True
        state._coreness_view[1:250] = 60
        low = state.resample_bulk(np.array([v]), k=60)
        assert v in low

    def test_resample_skips_unsampled(self, hub_graph):
        state = _make_state(hub_graph)
        low = state.resample_bulk(np.array([0]), k=0)  # not in sample mode
        assert low.size == 0

    def test_draw_and_apply_hits(self, hub_graph):
        state = _make_state(hub_graph)
        state.initialize()
        sampled = np.nonzero(state.mode)[0]
        v = int(sampled[0])
        targets = np.full(2000, v, dtype=np.int64)
        hits = state.draw_hits(targets)
        # Binomial concentration: rate * 2000 >> mu, far from zero.
        assert hits.size > 0
        saturated = state.apply_hits(hits)
        if state.cnt[v] >= state.mu:
            assert v in saturated

    def test_exit_sample_mode(self, hub_graph):
        state = _make_state(hub_graph)
        state.initialize()
        sampled = np.nonzero(state.mode)[0]
        state.exit_sample_mode(sampled)
        assert not state.mode.any()


class TestLasVegasRecovery:
    def test_error_detection_raises(self):
        """A vertex whose degree silently dropped below k must be caught."""
        g = complete_graph(300)
        state = _make_state(g, config=SamplingConfig(threshold=128))
        state.initialize()
        v = 0
        # Simulate: neighbors peeled in EARLIER rounds (coreness < k).
        state.peeled[1:290] = True
        # coreness stays 0 (they were peeled at low k), so at k=60 the
        # retrospective check must flag an error.
        with pytest.raises(SamplingRestartError):
            state.resample_bulk(np.array([v]), k=60)

    def test_framework_restarts_and_stays_exact(self, hub_graph):
        """Injected validation blindness forces the restart path."""
        config = FrameworkConfig(
            peel="online",
            buckets="1",
            sampling=True,
            # A tiny, over-confident mu makes estimates unreliable.
            sampling_config=SamplingConfig(mu=2, threshold=16, seed=1),
        )
        result = decompose(hub_graph, config)
        assert np.array_equal(
            result.coreness, reference_coreness(hub_graph)
        )

    def test_skip_validation_injection_recovers(self, hub_graph):
        """With validation disabled, errors surface at resample time and
        the driver restarts; the final answer is still exact."""
        from repro.core import framework as fw

        original = SamplingState.validate_failures

        def blind(self, k):
            self._skip_validation = True
            return original(self, k)

        SamplingState.validate_failures = blind
        try:
            config = FrameworkConfig(
                peel="online",
                buckets="1",
                sampling=True,
                sampling_config=SamplingConfig(mu=4, threshold=16, seed=2),
            )
            result = decompose(hub_graph, config)
        finally:
            SamplingState.validate_failures = original
        assert np.array_equal(
            result.coreness, reference_coreness(hub_graph)
        )


class TestSamplingInDecomposition:
    def test_sampling_triggers_on_hub_graph(self, hub_graph):
        config = FrameworkConfig(peel="online", buckets="1", sampling=True)
        result = decompose(hub_graph, config)
        assert result.metrics.sampled_vertices > 0

    def test_contention_reduced_vs_plain(self, hub_graph):
        plain = decompose(
            hub_graph, FrameworkConfig(peel="online", buckets="1")
        )
        sampled = decompose(
            hub_graph,
            FrameworkConfig(peel="online", buckets="1", sampling=True),
        )
        assert (
            sampled.metrics.max_contention
            <= plain.metrics.max_contention
        )

    def test_exactness_across_seeds(self, hub_graph):
        ref = reference_coreness(hub_graph)
        for seed in range(5):
            config = FrameworkConfig(
                peel="online",
                buckets="1",
                sampling=True,
                sampling_config=SamplingConfig(seed=seed),
            )
            assert np.array_equal(
                decompose(hub_graph, config).coreness, ref
            ), f"seed {seed}"


class TestRestartEscalation:
    def test_persistent_failures_fall_back_to_exact_mode(
        self, hub_graph, monkeypatch
    ):
        """After MAX_RESTARTS sampling failures, decompose() must switch
        sampling off and still return the exact answer."""
        from repro.core import framework as fw
        from repro.errors import SamplingRestartError

        original_run_once = fw._run_once
        calls = {"sampled": 0, "exact": 0}

        def flaky(graph, config, model, mu_boost, tracer=None,
                  registry=None):
            if config.sampling:
                calls["sampled"] += 1
                raise SamplingRestartError("injected persistent failure")
            calls["exact"] += 1
            return original_run_once(
                graph, config, model, mu_boost, tracer, registry
            )

        monkeypatch.setattr(fw, "_run_once", flaky)
        config = FrameworkConfig(
            peel="online", buckets="1", sampling=True
        )
        result = fw.decompose(hub_graph, config)
        assert calls["sampled"] == fw.MAX_RESTARTS + 1
        assert calls["exact"] == 1
        assert result.metrics.restarts == fw.MAX_RESTARTS + 1
        assert np.array_equal(
            result.coreness, reference_coreness(hub_graph)
        )
