"""Tests for the repository tooling (API doc generator)."""

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import gen_api_docs  # noqa: E402


class TestApiDocs:
    def test_generate_covers_modules(self):
        text = gen_api_docs.generate()
        for module in gen_api_docs.PUBLIC_MODULES:
            assert f"## `{module}`" in text

    def test_key_symbols_present(self):
        text = gen_api_docs.generate()
        for symbol in ("ParallelKCore", "HashBag", "CSRGraph",
                       "hindex_coreness", "table2"):
            assert symbol in text

    def test_no_undocumented_public_items(self):
        """Every public export must carry a docstring."""
        text = gen_api_docs.generate()
        assert "(undocumented)" not in text

    def test_main_writes_file(self, tmp_path):
        out = tmp_path / "API.md"
        assert gen_api_docs.main(["prog", str(out)]) == 0
        assert out.exists()
        assert out.read_text().startswith("# API index")
