"""Direct unit tests of the peel strategies (online, offline, VGC)."""

import numpy as np
import pytest

from repro.core.peel_offline import OfflinePeel
from repro.core.peel_online import OnlinePeel
from repro.core.state import PeelState
from repro.core.vgc import VGCConfig
from repro.generators import complete_graph, path_graph, star_graph
from repro.graphs.csr import CSRGraph
from repro.runtime.simulator import SimRuntime
from repro.structures.null_buckets import NullBuckets


def make_state(graph, sampling=None):
    runtime = SimRuntime()
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(graph.n, dtype=bool)
    coreness = np.zeros(graph.n, dtype=np.int64)
    buckets = NullBuckets()
    buckets.build(graph, dtilde, peeled, runtime)
    return PeelState(
        graph=graph,
        dtilde=dtilde,
        peeled=peeled,
        coreness=coreness,
        runtime=runtime,
        buckets=buckets,
        sampling=sampling,
    )


def peel_round(peel, state, frontier, k):
    """Run subrounds until the frontier drains (one framework round)."""
    frontier = np.asarray(frontier, dtype=np.int64)
    while frontier.size:
        state.coreness[frontier] = k
        state.peeled[frontier] = True
        frontier = peel.subround(state, frontier, k)
    return state


class TestOnlineFlat:
    def test_star_leaves_peel_hub_next(self):
        g = star_graph(6)
        state = make_state(g)
        peel = OnlinePeel()
        leaves = np.arange(1, 6, dtype=np.int64)
        state.peeled[leaves] = True
        state.coreness[leaves] = 1
        nxt = peel.subround(state, leaves, 1)
        # Hub degree falls from 5 to 0, crossing at k=1 exactly once.
        assert list(nxt) == [0]

    def test_decrements_apply_to_peeled_too(self):
        """The online peel decrements blindly (as the C code does)."""
        g = complete_graph(3)
        state = make_state(g)
        peel = OnlinePeel()
        frontier = np.array([0, 1, 2], dtype=np.int64)
        state.peeled[frontier] = True
        state.coreness[frontier] = 2
        nxt = peel.subround(state, frontier, 2)
        assert nxt.size == 0
        assert np.all(state.dtilde <= 0)

    def test_contention_recorded(self):
        g = star_graph(40)
        state = make_state(g)
        peel = OnlinePeel()
        leaves = np.arange(1, 40, dtype=np.int64)
        state.peeled[leaves] = True
        state.coreness[leaves] = 1
        peel.subround(state, leaves, 1)
        # 39 concurrent decrements hit the hub.
        assert state.runtime.metrics.max_contention == 39

    def test_crossing_fires_once_per_vertex(self):
        # Two frontier vertices both adjacent to w (degree 2): w crosses
        # exactly once even though both decrements land in one batch.
        g = CSRGraph.from_edges(3, [(0, 2), (1, 2)])
        state = make_state(g)
        peel = OnlinePeel()
        frontier = np.array([0, 1], dtype=np.int64)
        state.peeled[frontier] = True
        state.coreness[frontier] = 1
        nxt = peel.subround(state, frontier, 1)
        assert list(nxt) == [2]


class TestOfflinePeel:
    def test_matches_online_result(self):
        g = path_graph(10)
        for peel in (OnlinePeel(), OfflinePeel()):
            state = make_state(g)
            frontier = np.array([0, 9], dtype=np.int64)
            peel_round(peel, state, frontier, 1)
            assert state.peeled.all(), type(peel).__name__
            assert np.all(state.coreness == 1), type(peel).__name__

    def test_no_atomics(self):
        g = star_graph(20)
        state = make_state(g)
        peel = OfflinePeel()
        leaves = np.arange(1, 20, dtype=np.int64)
        state.peeled[leaves] = True
        state.coreness[leaves] = 1
        peel.subround(state, leaves, 1)
        assert state.runtime.metrics.atomics == 0
        assert state.runtime.metrics.max_contention == 0

    def test_more_barriers_than_online(self):
        g = path_graph(30)
        barriers = {}
        for name, peel in (("on", OnlinePeel()), ("off", OfflinePeel())):
            state = make_state(g)
            peel_round(peel, state, np.array([0, 29]), 1)
            barriers[name] = state.runtime.metrics.barriers
        assert barriers["off"] > barriers["on"]

    def test_empty_frontier_neighbors(self):
        g = CSRGraph.from_edges(3, [])
        state = make_state(g)
        nxt = OfflinePeel().subround(
            state, np.array([0], dtype=np.int64), 0
        )
        assert nxt.size == 0


class TestVGCPeel:
    def test_chain_absorbed_in_one_subround(self):
        g = path_graph(50)
        state = make_state(g)
        peel = OnlinePeel(vgc=VGCConfig(queue_size=128))
        frontier = np.array([0], dtype=np.int64)
        state.peeled[frontier] = True
        state.coreness[frontier] = 1
        nxt = peel.subround(state, frontier, 1)
        # The whole chain collapses into the local search except possibly
        # the far endpoint's own cascade.
        assert state.runtime.metrics.local_search_hits >= 40
        assert nxt.size <= 1

    def test_queue_budget_respected(self):
        g = path_graph(50)
        state = make_state(g)
        peel = OnlinePeel(vgc=VGCConfig(queue_size=5))
        frontier = np.array([0], dtype=np.int64)
        state.peeled[frontier] = True
        state.coreness[frontier] = 1
        nxt = peel.subround(state, frontier, 1)
        # Only 4 extra vertices absorbed; the chain continues next round.
        assert state.runtime.metrics.local_search_hits == 4
        assert nxt.size == 1

    def test_edge_budget_caps_absorption(self):
        g = path_graph(200)
        state = make_state(g)
        peel = OnlinePeel(
            vgc=VGCConfig(queue_size=1000, edge_budget=20)
        )
        frontier = np.array([0], dtype=np.int64)
        state.peeled[frontier] = True
        state.coreness[frontier] = 1
        peel.subround(state, frontier, 1)
        assert state.runtime.metrics.local_search_hits <= 20

    def test_same_answer_as_flat(self):
        g = complete_graph(8)
        for vgc in (None, VGCConfig()):
            state = make_state(g)
            peel = OnlinePeel(vgc=vgc)
            frontier = np.arange(8, dtype=np.int64)
            peel_round(peel, state, frontier, 7)
            assert np.all(state.coreness == 7)
