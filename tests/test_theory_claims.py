"""The paper's theoretical claims, pinned to measured quantities.

Each test names the claim (theorem / section) and checks the measured
counterpart on growing instances, so a regression that silently breaks
work-efficiency or the contention bound fails loudly.
"""

import numpy as np
import pytest

from repro.core.baselines import julienne_kcore, park_kcore, pkc_kcore
from repro.core.framework import FrameworkConfig, decompose
from repro.core.parallel_kcore import ParallelKCore
from repro.core.sampling import SamplingConfig, SamplingState
from repro.generators import (
    erdos_renyi,
    grid_2d,
    hcns,
    power_law_with_hub,
    star_graph,
)
from repro.runtime.simulator import SimRuntime


class TestTheorem31WorkEfficiency:
    """Thm. 3.1: the framework does O(n + m) work."""

    SIZES = (500, 1000, 2000, 4000)

    def _work_ratio(self, config, graph):
        result = decompose(graph, config)
        return result.metrics.work / (graph.n + graph.m)

    @pytest.mark.parametrize(
        "config",
        [
            FrameworkConfig(peel="online", buckets="1"),
            FrameworkConfig(peel="online", buckets="adaptive",
                            sampling=True, vgc=True),
            FrameworkConfig(peel="offline", buckets="16"),
        ],
        ids=["plain", "all", "julienne-style"],
    )
    def test_work_per_edge_stays_bounded(self, config):
        ratios = [
            self._work_ratio(config, erdos_renyi(n, 8.0, seed=n))
            for n in self.SIZES
        ]
        # Constant-factor work: the per-(n+m) cost must not trend upward.
        assert max(ratios) <= 1.5 * min(ratios), ratios
        assert max(ratios) < 30

    def test_active_set_sum_bounds_round_scans(self):
        """The proof's key sum: Sigma |A_i| <= n + Sigma d(v)."""
        g = erdos_renyi(800, 10.0, seed=3)
        result = decompose(g, FrameworkConfig(peel="online", buckets="1"))
        # The plain strategy scans A twice per round; its total scan work
        # (at scan_op each) is therefore <= 2 * scan_op * (n + m).
        scan_work = sum(
            s.work
            for s in result.metrics.steps
            if s.tag in ("refine_active", "extract_frontier")
        )
        assert scan_work <= 2 * 0.25 * (g.n + g.m)


class TestBaselineWorkInefficiency:
    """Sec. 3.2: ParK and PKC do O(m + k_max * n) work.

    On plain HCNS, ``k_max * n ~ m`` so the inefficiency hides as a
    constant; padding the graph with a long path makes ``n`` large while
    ``k_max`` stays, exposing the superlinear scan term.
    """

    @staticmethod
    def _padded_hcns(kmax):
        from repro.generators import path_graph
        from repro.graphs.transform import disjoint_union

        return disjoint_union(hcns(kmax), path_graph(500 * kmax))

    def test_park_work_grows_with_kmax(self):
        ratios = []
        for kmax in (32, 64, 128):
            g = self._padded_hcns(kmax)
            work = park_kcore(g).metrics.work
            ratios.append(work / (g.n + g.m))
        # Per-edge work grows with k_max (the n-scans dominate) ...
        assert ratios[-1] > 1.5 * ratios[0], ratios

    def test_ours_work_flat_on_same_family(self):
        ratios = []
        for kmax in (32, 64, 128):
            g = self._padded_hcns(kmax)
            work = ParallelKCore.plain().decompose(g).metrics.work
            ratios.append(work / (g.n + g.m))
        # ... while the work-efficient framework stays flat.
        assert max(ratios) <= 1.5 * min(ratios), ratios


class TestContentionBounds:
    """Sec. 4.1.5: sampling caps contention at O(kappa + log n)."""

    def test_unsampled_star_contention_is_degree(self):
        g = star_graph(2000)
        result = decompose(
            g, FrameworkConfig(peel="online", buckets="1")
        )
        assert result.metrics.max_contention == 1999

    def test_sampled_hub_contention_bounded(self):
        g = power_law_with_hub(
            4000, 4, hub_count=2, hub_degree=2000, seed=5
        )
        config = FrameworkConfig(
            peel="online", buckets="1", sampling=True
        )
        result = decompose(g, config)
        plain = decompose(g, FrameworkConfig(peel="online", buckets="1"))
        state = SamplingState(
            g,
            g.degrees.astype(np.int64).copy(),
            np.zeros(g.n, dtype=bool),
            SimRuntime(),
        )
        # Bound from the paper: O(k_max / r + threshold + mu/(1-r)).
        bound = (
            result.kmax / state.r
            + state.threshold
            + state.mu / (1 - state.r)
        )
        assert result.metrics.max_contention <= bound
        assert result.metrics.max_contention < plain.metrics.max_contention

    def test_julienne_offline_is_contention_free(self):
        g = power_law_with_hub(
            2000, 4, hub_count=1, hub_degree=800, seed=6
        )
        assert julienne_kcore(g).metrics.max_contention == 0


class TestBurdenedSpanClaims:
    """Sec. 4.2 / 6.2.5: online beats offline; VGC only improves it."""

    GRAPHS = ("grid", "er")

    def _graph(self, kind):
        return grid_2d(25, 25) if kind == "grid" else erdos_renyi(
            600, 8.0, seed=7
        )

    @pytest.mark.parametrize("kind", GRAPHS)
    def test_online_beats_offline_burdened_span(self, kind):
        g = self._graph(kind)
        online = decompose(
            g, FrameworkConfig(peel="online", buckets="16")
        )
        offline = decompose(
            g, FrameworkConfig(peel="offline", buckets="16")
        )
        assert (
            online.metrics.burdened_span
            < offline.metrics.burdened_span
        )

    @pytest.mark.parametrize("kind", GRAPHS)
    def test_vgc_never_worsens_burdened_span(self, kind):
        g = self._graph(kind)
        plain = decompose(g, FrameworkConfig(peel="online", buckets="1"))
        vgc = decompose(
            g, FrameworkConfig(peel="online", buckets="1", vgc=True)
        )
        assert (
            vgc.metrics.burdened_span
            <= plain.metrics.burdened_span * 1.01
        )

    def test_burdened_span_tracks_subrounds(self):
        """rho' reduction translates into burdened-span reduction."""
        g = grid_2d(30, 30)
        plain = decompose(g, FrameworkConfig(peel="online", buckets="1"))
        vgc = decompose(
            g, FrameworkConfig(peel="online", buckets="1", vgc=True)
        )
        rho_gain = plain.rho / vgc.rho
        span_gain = (
            plain.metrics.burdened_span / vgc.metrics.burdened_span
        )
        assert span_gain > rho_gain / 4  # same order of magnitude


class TestHBSCostClaims:
    """Sec. 5.2: O(log d(v)) structure cost per vertex."""

    def test_hbs_moves_logarithmic(self):
        # Vertex of degree d moves between buckets O(log d) times; total
        # bucket-move work is O(sum log d) << O(m) on a dense graph.
        g = erdos_renyi(1500, 40.0, seed=8)
        result = decompose(
            g, FrameworkConfig(peel="online", buckets="hbs")
        )
        move_work = sum(
            s.work
            for s in result.metrics.steps
            if s.tag in ("hbs_decreasekey", "bag_insert_many")
        )
        log_bound = 3 * 3 * np.log2(
            np.maximum(g.degrees, 2)
        ).sum()  # bucket_move_op * insert const * sum log d
        assert move_work <= 4 * log_bound

    def test_sampling_keeps_peeling_exact_many_seeds(self):
        """Cor. 4.3 / Sec. 4.1.4 in practice: exact across seeds.

        At paper scale restarts were never observed; at our much smaller
        n the whp guarantee (error ~ n^-c) is weaker, so the occasional
        restart is expected — and the Las-Vegas recovery must still
        deliver the exact answer every time.
        """
        g = power_law_with_hub(
            1500, 5, hub_count=2, hub_degree=600, seed=9
        )
        from repro.core.verify import reference_coreness

        ref = reference_coreness(g)
        restarts = 0
        for seed in range(10):
            config = FrameworkConfig(
                peel="online",
                buckets="adaptive",
                sampling=True,
                vgc=True,
                sampling_config=SamplingConfig(seed=seed),
            )
            result = decompose(g, config)
            assert np.array_equal(result.coreness, ref), seed
            restarts += result.metrics.restarts
        # Rare, not routine.
        assert restarts <= 3
