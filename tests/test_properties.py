"""Tests for graph statistics and classification."""

import numpy as np

from repro.generators import complete_graph, empty_graph, grid_2d, star_graph
from repro.graphs.csr import CSRGraph
from repro.graphs.properties import (
    DENSITY_THETA,
    connected_components,
    degree_histogram,
    graph_stats,
    is_dense,
)


class TestGraphStats:
    def test_basic_fields(self, triangle):
        stats = graph_stats(triangle)
        assert stats.n == 3
        assert stats.m == 6
        assert stats.max_degree == 2
        assert stats.average_degree == 2.0

    def test_dense_classification(self):
        clique = complete_graph(40)  # average degree 39 > 16
        assert graph_stats(clique).is_dense
        assert is_dense(clique)

    def test_sparse_classification(self):
        grid = grid_2d(20, 20)
        assert not graph_stats(grid).is_dense
        assert not is_dense(grid)

    def test_theta_boundary_is_exclusive(self):
        # A graph with average degree exactly theta counts as sparse.
        n = 34
        clique = complete_graph(n)  # avg degree n-1 = 33
        assert clique.average_degree > DENSITY_THETA
        assert is_dense(clique, theta=float(n - 1))is False

    def test_describe_mentions_class(self, triangle):
        assert "sparse" in graph_stats(triangle).describe()

    def test_empty_graph(self):
        stats = graph_stats(empty_graph(5))
        assert stats.max_degree == 0
        assert stats.average_degree == 0.0


class TestDegreeHistogram:
    def test_star(self):
        hist = degree_histogram(star_graph(5))
        assert hist[1] == 4  # four leaves
        assert hist[4] == 1  # the hub

    def test_sums_to_n(self, small_er):
        assert degree_histogram(small_er).sum() == small_er.n

    def test_empty(self):
        assert degree_histogram(CSRGraph.from_edges(0, [])).size == 0


class TestConnectedComponents:
    def test_single_component(self, triangle):
        labels = connected_components(triangle)
        assert len(set(labels.tolist())) == 1

    def test_two_components(self):
        g = CSRGraph.from_edges(5, [(0, 1), (2, 3)])
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] not in (labels[0], labels[2])

    def test_isolated_vertices_are_own_components(self):
        g = empty_graph(4)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 4

    def test_grid_connected(self):
        labels = connected_components(grid_2d(8, 8))
        assert np.all(labels == labels[0])
