"""Randomized model-based tests for the concurrent structures.

Each structure is driven with seeded random operation sequences and checked
against a naive reference model after every step:

* :class:`HashBag` against ``collections.Counter`` (multiset semantics),
  deliberately crossing the 75%-full chunk-advance and growth edges;
* :class:`MonotoneIntPQ` against a plain dict-of-keys reference that
  respects the monotone-floor discipline;
* the bucketing structures (:class:`SingleBucket`, :class:`FixedBuckets`,
  :class:`HierarchicalBuckets`, :class:`AdaptiveHBS`) against each other —
  a simulated peel must extract the exact same ``(k, frontier)`` sequence
  from every implementation, and reproduce the sequential coreness.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.sequential import bz_core
from repro.errors import BucketStructureError
from repro.generators import (
    erdos_renyi,
    grid_2d,
    hcns,
    power_law_with_hub,
)
from repro.graphs.csr import CSRGraph
from repro.runtime.simulator import SimRuntime
from repro.structures import (
    AdaptiveHBS,
    FixedBuckets,
    HashBag,
    HierarchicalBuckets,
    MonotoneIntPQ,
    SingleBucket,
)
from repro.structures.hash_bag import LOAD_FACTOR


class TestHashBagModel:
    """HashBag vs collections.Counter under random op sequences."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_ops_match_counter(self, seed):
        rng = np.random.default_rng(seed)
        # Tiny lambda and capacity force many chunk advances and growths.
        bag = HashBag(8, lam=4)
        model: Counter[int] = Counter()
        for _ in range(300):
            op = int(rng.integers(0, 10))
            if op < 5:
                value = int(rng.integers(0, 40))
                bag.insert(value)
                model[value] += 1
            elif op < 7:
                batch = rng.integers(
                    0, 40, size=int(rng.integers(0, 12))
                ).astype(np.int64)
                bag.insert_many(batch)
                model.update(batch.tolist())
            elif op < 9:
                assert Counter(bag.peek_all().tolist()) == +model
                assert len(bag) == sum(model.values())
            else:
                assert Counter(bag.extract_all().tolist()) == +model
                model.clear()
                assert len(bag) == 0
        assert Counter(bag.extract_all().tolist()) == +model

    def test_load_factor_edge_advances_chunk(self):
        # lam=4: the chunk advances when it holds ceil(0.75 * 4) = 3
        # elements, i.e. exactly at the LOAD_FACTOR boundary.
        bag = HashBag(8, lam=4)
        threshold = int(4 * LOAD_FACTOR)
        for value in range(threshold):
            bag.insert(value)
        assert bag.used_prefix == 4  # still in the first chunk
        bag.insert(threshold)
        assert bag.used_prefix == 12  # second (doubled) chunk opened
        assert sorted(bag.extract_all().tolist()) == list(
            range(threshold + 1)
        )

    def test_growth_beyond_initial_bounds(self):
        # Overflow every pre-allocated chunk so _advance_chunk must grow.
        bag = HashBag(8, lam=4)
        initial_slots = bag._slots.size
        bag.insert_many(np.arange(200, dtype=np.int64))
        assert bag._slots.size > initial_slots
        assert sorted(bag.extract_all().tolist()) == list(range(200))

    def test_extract_resets_to_smallest_chunk(self):
        bag = HashBag(8, lam=4)
        bag.insert_many(np.arange(50, dtype=np.int64))
        assert bag.used_prefix > 4
        bag.extract_all()
        assert bag.used_prefix == 4


class _RefPQ:
    """Naive dict-backed reference for MonotoneIntPQ."""

    def __init__(self) -> None:
        self.keys: dict[int, int] = {}
        self.floor = 0

    def insert(self, item: int, key: int) -> None:
        current = self.keys.get(item)
        if current is None or key < current:
            self.keys[item] = key

    def find_min_key(self) -> int | None:
        return min(self.keys.values()) if self.keys else None

    def extract_min_bucket(self) -> tuple[int, list[int]]:
        k = min(self.keys.values())
        items = sorted(i for i, v in self.keys.items() if v == k)
        for item in items:
            del self.keys[item]
        self.floor = k
        return k, items


class TestMonotoneIntPQModel:
    """MonotoneIntPQ vs the dict reference under monotone random ops."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_ops_match_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        pq = MonotoneIntPQ(capacity=32, max_key=64)
        ref = _RefPQ()
        next_item = 0
        for _ in range(250):
            op = int(rng.integers(0, 10))
            if op < 4:
                key = ref.floor + int(rng.integers(0, 40))
                pq.insert(next_item, key)
                ref.insert(next_item, key)
                next_item += 1
            elif op < 6 and ref.keys:
                # Decrease an existing item towards (but not below) the
                # floor; a non-smaller key must be a no-op on both sides.
                item = int(rng.choice(list(ref.keys)))
                key = ref.floor + int(rng.integers(0, 40))
                pq.decrease_key(item, key)
                if key < ref.keys[item]:
                    ref.keys[item] = key
            elif op < 8:
                assert pq.find_min_key() == ref.find_min_key()
                assert len(pq) == len(ref.keys)
                assert pq.is_empty() == (not ref.keys)
            elif ref.keys:
                assert pq.extract_min_bucket() == ref.extract_min_bucket()
        # Drain: extraction order must be the reference's, keys monotone.
        last = -1
        while not pq.is_empty():
            key, items = pq.extract_min_bucket()
            assert (key, items) == ref.extract_min_bucket()
            assert key >= last
            last = key
        assert not ref.keys

    def test_monotone_violation_raises(self):
        pq = MonotoneIntPQ(capacity=4)
        pq.insert(1, 10)
        pq.extract_min_bucket()  # floor is now 10
        with pytest.raises(BucketStructureError, match="monotone"):
            pq.insert(2, 5)
        pq.insert(3, 10)  # at the floor is allowed
        with pytest.raises(BucketStructureError, match="monotone"):
            pq.decrease_key(3, 9)

    def test_extract_empty_raises(self):
        with pytest.raises(BucketStructureError, match="empty"):
            MonotoneIntPQ(capacity=4).extract_min_bucket()

    def test_key_beyond_max_key_grows_layout(self):
        pq = MonotoneIntPQ(capacity=4, max_key=8)
        pq.insert(0, 500)
        pq.insert(1, 2)
        assert pq.extract_min_bucket() == (2, [1])
        assert pq.extract_min_bucket() == (500, [0])
        assert pq.is_empty()

    def test_insert_existing_item_is_decrease(self):
        pq = MonotoneIntPQ(capacity=4)
        pq.insert(7, 30)
        pq.insert(7, 12)  # smaller: updates
        pq.insert(7, 40)  # larger: no-op
        assert len(pq) == 1
        assert pq.extract_min_bucket() == (12, [7])


def _drive(structure, graph: CSRGraph):
    """Peel ``graph`` through ``structure``, mirroring the offline peel.

    Returns the ``(k, frontier)`` subround trace and the final coreness.
    Decrements that cross the round's threshold join the running frontier
    directly (never passed to ``on_decrements``), exactly per the
    :class:`BucketStructure` contract.
    """
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(graph.n, dtype=bool)
    coreness = np.zeros(graph.n, dtype=np.int64)
    structure.build(graph, dtilde, peeled, SimRuntime())
    trace = []
    while (step := structure.next_round()) is not None:
        k, frontier = step
        while frontier.size:
            frontier = np.unique(frontier)
            trace.append((k, frontier.tolist()))
            coreness[frontier] = k
            peeled[frontier] = True
            targets = graph.gather_neighbors(frontier)
            if targets.size == 0:
                break
            keys, counts = np.unique(targets, return_counts=True)
            old = dtilde[keys]
            new = old - counts
            dtilde[keys] = new
            crossed = keys[(old > k) & (new <= k)]
            survivors = (new > k) & (~peeled[keys])
            if np.any(survivors):
                structure.on_decrements(keys[survivors], old[survivors])
            frontier = crossed[~peeled[crossed]]
        structure.round_finished(k)
    return trace, coreness


#: Factories, not instances: structures are stateful one-shot objects.
STRUCTURES = {
    "single": SingleBucket,
    "fixed-16": FixedBuckets,
    "fixed-4": lambda: FixedBuckets(4),
    "hbs": HierarchicalBuckets,
    "adaptive": AdaptiveHBS,
    "adaptive-low-theta": lambda: AdaptiveHBS(theta=4),
}

GRAPHS = {
    "er-150": lambda: erdos_renyi(150, 6.0, seed=3),
    "er-sparse": lambda: erdos_renyi(120, 2.0, seed=4),
    "grid-8": lambda: grid_2d(8, 8),
    "hcns-32": lambda: hcns(32),
    "hub-200": lambda: power_law_with_hub(
        200, 5, hub_count=2, hub_degree=60, seed=7
    ),
}


class TestBucketStructuresAgree:
    """All bucketing strategies must extract identical peel schedules."""

    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_identical_traces_and_coreness(self, graph_name):
        graph = GRAPHS[graph_name]()
        expected = bz_core(graph).coreness
        reference_trace = None
        for name, factory in STRUCTURES.items():
            trace, coreness = _drive(factory(), graph)
            assert np.array_equal(coreness, expected), (
                f"{name} coreness wrong on {graph_name}"
            )
            if reference_trace is None:
                reference_trace = trace
            else:
                assert trace == reference_trace, (
                    f"{name} schedule differs on {graph_name}"
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_agree(self, seed):
        graph = erdos_renyi(100, 4.0 + seed, seed=40 + seed)
        expected = bz_core(graph).coreness
        traces = {
            name: _drive(factory(), graph)
            for name, factory in STRUCTURES.items()
        }
        for name, (trace, coreness) in traces.items():
            assert np.array_equal(coreness, expected), (name, seed)
            assert trace == traces["single"][0], (name, seed)

    def test_frontiers_match_contract(self):
        # Every returned frontier is exactly the unpeeled dtilde == k set:
        # verified indirectly by the trace equality above; here check the
        # driver itself reproduces BZ on a graph with threshold-crossing
        # cascades (the path-of-cliques HCNS adversary).
        graph = hcns(48)
        _, coreness = _drive(SingleBucket(), graph)
        assert np.array_equal(coreness, bz_core(graph).coreness)
