"""Batch-dynamic engine: semantics, exactness, kernel-mode matrix.

The engine's contract (src/repro/core/batch_dynamic.py): after every
committed batch the coreness array is bit-equal to a full recompute of
the current graph; batch results depend only on the *set* of updates;
and every ``REPRO_KERNELS`` mode produces the identical coreness *and*
the identical simulated-runtime ledger.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batch_dynamic import BatchDynamicKCore, BatchResult
from repro.core.dynamic import DynamicKCore
from repro.core.verify import reference_coreness
from repro.graphs.csr import CSRGraph
from repro.perf import (
    AUTO,
    KERNELS_ENV,
    NATIVE,
    REFERENCE,
    VECTORIZED,
    native_available,
)
from repro.runtime.cost_model import DEFAULT_COST_MODEL


def assert_exact(engine: BatchDynamicKCore, context=None):
    expected = reference_coreness(engine.snapshot())
    assert np.array_equal(engine.coreness, expected), (
        context,
        np.flatnonzero(engine.coreness != expected)[:10],
    )


def random_batches(graph, rng, batches, batch_size):
    """A deterministic batch sequence over an evolving edge set."""
    current = set()
    src = np.repeat(np.arange(graph.n), np.diff(graph.indptr))
    for s, d in zip(src.tolist(), graph.indices.tolist()):
        if s < d:
            current.add((s, d))
    out = []
    for _ in range(batches):
        ins, dels = [], []
        for _ in range(batch_size):
            if current and rng.random() < 0.45:
                pool = sorted(current)
                edge = pool[int(rng.integers(len(pool)))]
                current.discard(edge)
                dels.append(edge)
            else:
                u = int(rng.integers(graph.n))
                v = int(rng.integers(graph.n))
                if u == v:
                    continue
                edge = (min(u, v), max(u, v))
                if edge not in current:
                    current.add(edge)
                    ins.append(edge)
        out.append((ins, dels))
    return out


# ----------------------------------------------------------------------
# Exactness against full recompute and the legacy engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_exact_after_every_batch(small_er, seed):
    rng = np.random.default_rng(seed)
    engine = BatchDynamicKCore(small_er)
    legacy = DynamicKCore(small_er)
    for index, (ins, dels) in enumerate(
        random_batches(small_er, rng, batches=6, batch_size=10)
    ):
        engine.apply_batch(insertions=ins, deletions=dels)
        legacy.batch_update(insertions=ins, deletions=dels)
        assert_exact(engine, (seed, index))
        assert np.array_equal(engine.coreness, legacy.coreness)
        assert engine.snapshot() == legacy.snapshot()


def test_initial_state_matches_reference(any_graph):
    engine = BatchDynamicKCore(any_graph)
    assert np.array_equal(
        engine.coreness, reference_coreness(any_graph)
    )
    assert engine.epoch == 0
    assert engine.snapshot() == any_graph


def test_triangle_from_isolated_vertices():
    """A batch insertion can raise coreness by more than its parts."""
    engine = BatchDynamicKCore(CSRGraph.from_edges(4, []))
    result = engine.apply_batch(
        insertions=[(0, 1), (1, 2), (0, 2)]
    )
    assert engine.coreness.tolist() == [2, 2, 2, 0]
    assert result.raised.tolist() == [0, 1, 2]
    assert result.lowered.size == 0
    assert result.changed.tolist() == [0, 1, 2]


def test_deletion_cascade(small_grid):
    """Detaching the corner vertex cascades coreness drops in the grid."""
    engine = BatchDynamicKCore(small_grid)
    corner_edges = [(0, int(v)) for v in small_grid.neighbors(0)]
    result = engine.apply_batch(deletions=corner_edges)
    assert_exact(engine, "grid-delete")
    assert result.applied_deletions == len(corner_edges)
    assert engine.core_number(0) == 0
    assert result.lowered.size > 0


# ----------------------------------------------------------------------
# Batch semantics
# ----------------------------------------------------------------------
def test_duplicate_updates_coalesce(triangle):
    engine = BatchDynamicKCore(triangle)
    result = engine.apply_batch(
        insertions=[(0, 1), (1, 0), (0, 1)]  # already present, 3 ways
    )
    assert result.applied_insertions == 0
    assert result.noop_insertions == 1  # coalesced to one canonical edge
    assert_exact(engine)


def test_insert_and_delete_same_edge_in_one_batch(triangle):
    """Deletions apply first, so delete+insert of one edge keeps it."""
    engine = BatchDynamicKCore(triangle)
    result = engine.apply_batch(
        insertions=[(0, 1)], deletions=[(0, 1)]
    )
    assert engine.has_edge(0, 1)
    assert result.applied_deletions == 1
    assert result.applied_insertions == 1
    assert_exact(engine)
    assert np.array_equal(
        engine.coreness, reference_coreness(triangle)
    )


def test_self_loop_rejected(triangle):
    engine = BatchDynamicKCore(triangle)
    with pytest.raises(ValueError, match="self-loop"):
        engine.apply_batch(insertions=[(1, 1)])
    with pytest.raises(ValueError, match="self-loop"):
        engine.apply_batch(deletions=[(2, 2)])


def test_out_of_range_rejected(triangle):
    engine = BatchDynamicKCore(triangle)
    with pytest.raises(IndexError):
        engine.apply_batch(insertions=[(0, 99)])
    with pytest.raises(IndexError):
        engine.apply_batch(deletions=[(-1, 0)])


def test_noop_updates_counted(triangle):
    engine = BatchDynamicKCore(triangle)
    result = engine.apply_batch(
        insertions=[(0, 1)], deletions=[(1, 2)]
    )
    # (0,1) already present -> noop insert; (1,2) present -> applied.
    assert result.noop_insertions == 1
    assert result.applied_deletions == 1
    result = engine.apply_batch(deletions=[(1, 2)])
    assert result.noop_deletions == 1 and result.applied_deletions == 0
    assert engine.epoch == 2


def test_empty_batch_commits_an_epoch(small_er):
    engine = BatchDynamicKCore(small_er)
    before = engine.coreness.copy()
    result = engine.apply_batch()
    assert engine.epoch == 1 and result.epoch == 1
    assert result.changed.size == 0
    assert np.array_equal(engine.coreness, before)


def test_batch_of_one_equals_per_edge_engine(small_er):
    rng = np.random.default_rng(7)
    engine = BatchDynamicKCore(small_er)
    legacy = DynamicKCore(small_er)
    for ins, dels in random_batches(small_er, rng, 1, 40):
        for u, v in dels:
            raised_or_lowered = engine.delete_edge(u, v)
            legacy_changed = legacy.delete_edge(u, v)
            assert np.array_equal(engine.coreness, legacy.coreness)
            assert sorted(raised_or_lowered.tolist()) == sorted(
                int(x) for x in legacy_changed
            )
        for u, v in ins:
            raised = engine.insert_edge(u, v)
            legacy_changed = legacy.insert_edge(u, v)
            assert np.array_equal(engine.coreness, legacy.coreness)
            assert sorted(raised.tolist()) == sorted(
                int(x) for x in legacy_changed
            )
    assert_exact(engine, "per-edge parity")


def test_permutation_invariance_within_batch(small_er):
    rng = np.random.default_rng(21)
    [(ins, dels)] = random_batches(small_er, rng, 1, 24)
    outcomes = []
    for order_seed in range(3):
        order = np.random.default_rng(order_seed)
        shuffled_ins = list(ins)
        shuffled_dels = list(dels)
        order.shuffle(shuffled_ins)
        order.shuffle(shuffled_dels)
        engine = BatchDynamicKCore(small_er)
        engine.apply_batch(
            insertions=shuffled_ins, deletions=shuffled_dels
        )
        outcomes.append(
            (engine.coreness.copy(), engine.snapshot())
        )
    first_core, first_graph = outcomes[0]
    for coreness, graph in outcomes[1:]:
        assert np.array_equal(coreness, first_core)
        assert graph == first_graph


def test_queries_read_committed_state(triangle):
    engine = BatchDynamicKCore(triangle)
    assert engine.core_number(0) == 2
    assert engine.has_edge(0, 1) and not engine.has_edge(0, 3)
    assert not engine.has_edge(0, 0)
    assert engine.degree(0) == 2
    engine.apply_batch(deletions=[(0, 1)])
    assert engine.core_number(0) == 1
    assert not engine.has_edge(0, 1)


def test_batch_result_counters(small_er):
    engine = BatchDynamicKCore(small_er)
    result = engine.apply_batch(insertions=[(0, 1)])
    assert isinstance(result, BatchResult)
    assert engine.batches == 1
    assert engine.updates == result.applied_insertions
    assert result.rounds >= 0


# ----------------------------------------------------------------------
# Kernel-mode matrix: identical coreness AND identical ledger
# ----------------------------------------------------------------------
ALL_MODES = [REFERENCE, VECTORIZED, AUTO] + (
    [NATIVE] if native_available() else []
)


def _replay(monkeypatch, mode, graph, batches):
    monkeypatch.setenv(KERNELS_ENV, mode)
    engine = BatchDynamicKCore(graph)
    for ins, dels in batches:
        engine.apply_batch(insertions=ins, deletions=dels)
    return (
        engine.coreness.copy(),
        engine.metrics.to_stable_dict(DEFAULT_COST_MODEL),
    )


@pytest.mark.parametrize("mode", ALL_MODES)
def test_kernel_modes_bit_exact(monkeypatch, small_er, mode):
    rng = np.random.default_rng(3)
    batches = random_batches(small_er, rng, batches=5, batch_size=12)
    core_m, metrics_m = _replay(monkeypatch, mode, small_er, batches)
    core_r, metrics_r = _replay(
        monkeypatch, REFERENCE, small_er, batches
    )
    assert np.array_equal(core_m, core_r), mode
    assert metrics_m == metrics_r, mode


def test_native_unavailable_falls_back(monkeypatch):
    """auto must resolve to the NumPy path when no compiler exists."""
    import repro.perf.native as native_mod

    monkeypatch.setattr(native_mod, "available", lambda: False)
    monkeypatch.setenv(KERNELS_ENV, AUTO)
    graph = CSRGraph.from_edges(5, [(0, 1), (1, 2), (2, 0)])
    engine = BatchDynamicKCore(graph)
    engine.apply_batch(insertions=[(0, 3)])
    assert_exact(engine, "auto-fallback")
    monkeypatch.setenv(KERNELS_ENV, NATIVE)
    with pytest.raises(RuntimeError, match="no C compiler"):
        engine.apply_batch(insertions=[(1, 3)])


def test_tracing_does_not_change_the_ledger(small_er):
    from repro.trace import Tracer, tracing

    rng = np.random.default_rng(9)
    batches = random_batches(small_er, rng, 3, 8)

    engine = BatchDynamicKCore(small_er)
    for ins, dels in batches:
        engine.apply_batch(insertions=ins, deletions=dels)
    untraced = engine.metrics.to_stable_dict(DEFAULT_COST_MODEL)

    tracer = Tracer(label="batch-test")
    with tracing(tracer):
        traced_engine = BatchDynamicKCore(small_er)
        for ins, dels in batches:
            traced_engine.apply_batch(insertions=ins, deletions=dels)
    traced = traced_engine.metrics.to_stable_dict(DEFAULT_COST_MODEL)

    assert traced == untraced
    assert np.array_equal(engine.coreness, traced_engine.coreness)
    assert any(
        event.name == "batch_commit" for event in tracer.instants
    )


# ----------------------------------------------------------------------
# Hypothesis: arbitrary small graphs and update sets
# ----------------------------------------------------------------------
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_hypothesis_batches_match_recompute_and_legacy(data):
    n = data.draw(st.integers(min_value=2, max_value=24), label="n")
    pair = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda uv: uv[0] != uv[1])
    initial = data.draw(
        st.lists(pair, max_size=40), label="initial_edges"
    )
    graph = CSRGraph.from_edges(n, initial)
    engine = BatchDynamicKCore(graph)
    legacy = DynamicKCore(graph)
    for index in range(data.draw(st.integers(1, 4), label="batches")):
        ins = data.draw(st.lists(pair, max_size=8), label=f"ins{index}")
        dels = data.draw(
            st.lists(pair, max_size=8), label=f"dels{index}"
        )
        engine.apply_batch(insertions=ins, deletions=dels)
        legacy.batch_update(insertions=ins, deletions=dels)
        assert_exact(engine, index)
        assert np.array_equal(engine.coreness, legacy.coreness)
