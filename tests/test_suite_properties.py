"""Structural audits of the benchmark suite graphs.

Every suite entry claims to reproduce the structural property of one
Table-2 family; these tests pin those properties down so a generator
regression can't silently invalidate the benchmark shapes.
"""

import numpy as np
import pytest

from repro.core.sampling import SamplingConfig, SamplingState
from repro.core.verify import reference_coreness
from repro.generators import suite
from repro.runtime.simulator import SimRuntime


def _graph(name):
    return suite.load(name)


class TestFamilies:
    @pytest.mark.parametrize("name", suite.names(family="road"))
    def test_road_graphs_are_road_like(self, name):
        g = _graph(name)
        assert g.max_degree <= 8
        assert g.average_degree < 6
        assert reference_coreness(g).max() <= 3

    @pytest.mark.parametrize("name", suite.names(family="knn"))
    def test_knn_graphs_have_min_degree_k(self, name):
        g = _graph(name)
        # The name encodes k (CH5, GL2, GL5, GL10, COS5).
        digits = "".join(c for c in name.split("-")[0] if c.isdigit())
        k = int(digits)
        assert g.degrees.min() >= k, name

    @pytest.mark.parametrize("name", suite.names(family="social"))
    def test_social_graphs_are_dense_power_law(self, name):
        g = _graph(name)
        assert g.average_degree > 10
        assert g.max_degree > 8 * g.average_degree  # heavy tail

    @pytest.mark.parametrize("name", suite.names(family="web"))
    def test_web_graphs_are_very_skewed(self, name):
        g = _graph(name)
        assert g.max_degree > 20 * g.average_degree

    def test_grid_and_cube_uniform_coreness(self):
        assert reference_coreness(_graph("GRID")).max() == 2
        assert reference_coreness(_graph("CUBE")).max() == 3

    def test_hcns_structure(self):
        g = _graph("HCNS")
        kappa = reference_coreness(g)
        assert kappa.max() == 1024
        counts = np.bincount(kappa)
        assert np.all(counts[1:1024] == 1)  # one vertex per level

    def test_hcnsw_structure(self):
        g = _graph("HCNSW")
        kappa = reference_coreness(g)
        assert kappa.max() == 384
        counts = np.bincount(kappa)
        assert np.all(counts[1:384] == 3)  # three witnesses per level

    def test_meshes_are_planarish(self):
        for name in ("TRCE-S", "BBL-S"):
            g = _graph(name)
            assert g.num_edges <= 3 * g.n - 6


class TestSamplingTriggers:
    @pytest.mark.parametrize("name", suite.SAMPLING_TRIGGER)
    def test_trigger_graphs_have_sampleable_vertices(self, name):
        """Every listed trigger graph must actually enter sample mode."""
        g = _graph(name)
        runtime = SimRuntime()
        state = SamplingState(
            g,
            g.degrees.astype(np.int64).copy(),
            np.zeros(g.n, dtype=bool),
            runtime,
            config=SamplingConfig(),
        )
        state.initialize()
        assert state.mode.any(), name

    def test_non_trigger_sparse_graphs_do_not_sample(self):
        for name in ("AF-S", "GRID", "GL5-S"):
            g = _graph(name)
            runtime = SimRuntime()
            state = SamplingState(
                g,
                g.degrees.astype(np.int64).copy(),
                np.zeros(g.n, dtype=bool),
                runtime,
            )
            state.initialize()
            assert not state.mode.any(), name


class TestDeterminism:
    @pytest.mark.parametrize("name", suite.SMALL)
    def test_builders_are_deterministic(self, name):
        spec = suite.SUITE[name]
        assert spec.build() == spec.build()

    def test_all_entries_have_metadata(self):
        for spec in suite.SUITE.values():
            assert spec.family in ("social", "web", "road", "knn", "other")
            assert spec.paper_name


class TestDiskCache:
    def test_cache_round_trip(self, tmp_path, monkeypatch):
        from repro.generators import suite as suite_mod

        monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path))
        suite_mod.load.cache_clear()
        first = suite_mod.load("GL2-S")
        assert list(tmp_path.glob("GL2-S.*.npz"))
        suite_mod.load.cache_clear()
        second = suite_mod.load("GL2-S")
        assert first == second
        assert second.name == "GL2-S"
        # Leave the process-level cache clean for other tests.
        monkeypatch.delenv("REPRO_GRAPH_CACHE")
        suite_mod.load.cache_clear()
