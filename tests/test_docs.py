"""Documentation hygiene: the docs reference real files and commands."""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDocsExist:
    def test_required_documents_present(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/ALGORITHMS.md", "docs/COST_MODEL.md",
                     "docs/API.md", "docs/TUTORIAL.md", "CITATION.cff",
                     "Makefile"):
            assert (ROOT / name).exists(), name

    def test_readme_example_scripts_exist(self):
        text = read("README.md")
        for match in re.findall(r"`(examples/[\w./-]+\.py)`", text):
            assert (ROOT / match).exists(), match

    def test_tutorial_scripts_exist(self):
        text = read("docs/TUTORIAL.md")
        for match in re.findall(r"`(examples/[\w./-]+\.py)`", text):
            assert (ROOT / match).exists(), match

    def test_design_bench_targets_exist(self):
        text = read("DESIGN.md")
        for match in re.findall(r"`(benchmarks/[\w./-]+\.py)`", text):
            assert (ROOT / match).exists(), match
        for match in re.findall(r"`(bench_[\w.]+\.py)`", text):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_design_modules_exist(self):
        text = read("DESIGN.md")
        for match in set(re.findall(r"`repro\.([\w.]+)`", text)):
            parts = match.split(".")
            candidates = [
                ROOT / "src" / "repro" / Path(*parts).with_suffix(".py"),
                ROOT / "src" / "repro" / Path(*parts) / "__init__.py",
            ]
            # Wildcard entries like `repro.analysis.*` reference packages.
            if parts[-1] == "*":
                candidates = [
                    ROOT / "src" / "repro" / Path(*parts[:-1])
                    / "__init__.py"
                ]
            assert any(c.exists() for c in candidates), match

    def test_experiments_covers_every_paper_figure(self):
        text = read("EXPERIMENTS.md")
        for item in ("Table 2", "Fig. 2", "Fig. 5", "Fig. 6", "Fig. 7",
                     "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
                     "Fig. 12", "Table 3", "Fig. 15"):
            assert item in text, item

    def test_api_docs_fresh_enough(self):
        """docs/API.md must cover every public module."""
        text = read("docs/API.md")
        for module in ("repro.core", "repro.structures",
                       "repro.generators", "repro.analysis"):
            assert f"## `{module}`" in text, module
