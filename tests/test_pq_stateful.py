"""Stateful hypothesis testing of the monotone integer priority queue."""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.structures.integer_pq import MonotoneIntPQ


class PQMachine(RuleBasedStateMachine):
    """Compare MonotoneIntPQ against a model dict under random ops."""

    def __init__(self):
        super().__init__()
        self.pq = MonotoneIntPQ(capacity=64)
        self.model: dict[int, int] = {}
        self.floor = 0
        self.next_item = 0

    @rule(offset=st.integers(0, 30))
    def insert_new(self, offset):
        key = self.floor + offset
        self.pq.insert(self.next_item, key)
        self.model[self.next_item] = key
        self.next_item += 1

    @rule(offset=st.integers(0, 30), pick=st.integers(0, 1 << 30))
    def decrease_existing(self, offset, pick):
        if not self.model:
            return
        items = sorted(self.model)
        item = items[pick % len(items)]
        new_key = self.floor + offset
        self.pq.decrease_key(item, new_key)
        if new_key < self.model[item]:
            self.model[item] = new_key

    @precondition(lambda self: self.model)
    @rule()
    def extract(self):
        key, items = self.pq.extract_min_bucket()
        expected_key = min(self.model.values())
        expected_items = sorted(
            i for i, k in self.model.items() if k == expected_key
        )
        assert key == expected_key
        assert items == expected_items
        for item in items:
            del self.model[item]
        self.floor = key

    @invariant()
    def sizes_agree(self):
        assert len(self.pq) == len(self.model)


TestPQStateful = PQMachine.TestCase
