"""Tests for the collapsed k-core greedy attack."""

import numpy as np
import pytest

from repro.core.collapse import collapse_kcore_greedy
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.transform import remove_vertices


class TestGreedyCollapse:
    def test_cycle_collapses_with_one_removal(self):
        # A cycle is a 2-core held together by every vertex: removing any
        # one unravels everything.
        g = cycle_graph(12)
        result = collapse_kcore_greedy(g, 2, budget=1)
        assert result.core_sizes == [12, 0]
        assert result.followers == [11]

    def test_grid_corona_cascade(self):
        g = grid_2d(6, 6)
        result = collapse_kcore_greedy(g, 2, budget=2)
        # Every grid vertex is in the 2-core; the greedy finds removals
        # with nonzero cascades (corner-adjacent unraveling).
        assert result.core_sizes[0] == 36
        assert result.core_sizes[-1] < 36 - 2  # more than just the picks

    def test_clique_shrinks_one_by_one_until_threshold(self):
        g = complete_graph(6)
        result = collapse_kcore_greedy(g, 4, budget=2)
        # K6 5-core... at k=4: removing one vertex leaves K5 (still a
        # 4-core); removing another leaves K4 with degree 3 < 4: gone.
        assert result.core_sizes == [6, 5, 0]

    def test_state_matches_recompute_after_attack(self):
        g = erdos_renyi(150, 6.0, seed=4)
        k = 3
        result = collapse_kcore_greedy(g, k, budget=3)
        survivor_graph = remove_vertices(g, result.removed)
        expected_core = int(
            (reference_coreness(survivor_graph) >= k).sum()
        )
        assert result.core_sizes[-1] == expected_core

    def test_core_sizes_monotone(self):
        g = erdos_renyi(120, 5.0, seed=5)
        result = collapse_kcore_greedy(g, 2, budget=4)
        assert result.core_sizes == sorted(
            result.core_sizes, reverse=True
        )

    def test_collapse_property(self):
        g = erdos_renyi(120, 5.0, seed=6)
        result = collapse_kcore_greedy(g, 2, budget=3)
        assert result.collapse == (
            result.core_sizes[0] - result.core_sizes[-1]
        )

    def test_greedy_beats_random_on_vulnerable_graph(self):
        # Ring of cycles joined by single edges: targeted removals
        # unravel whole rings, random removals usually nick one.
        edges = []
        for c in range(6):
            base = c * 8
            ring = [(base + i, base + (i + 1) % 8) for i in range(8)]
            edges.extend(ring)
            edges.append((base, (base + 8) % 48))
        g = CSRGraph.from_edges(48, edges)
        greedy = collapse_kcore_greedy(g, 2, budget=2)
        rng = np.random.default_rng(0)
        random_total = []
        for _ in range(5):
            picks = rng.choice(48, size=2, replace=False)
            survivor = remove_vertices(g, picks)
            random_total.append(
                48 - 2 - int((reference_coreness(survivor) >= 2).sum())
            )
        assert greedy.collapse >= max(random_total)

    def test_empty_core(self):
        g = cycle_graph(5)
        result = collapse_kcore_greedy(g, 3, budget=2)
        assert result.core_sizes == [0]
        assert result.removed == []

    def test_budget_zero(self):
        g = complete_graph(5)
        result = collapse_kcore_greedy(g, 2, budget=0)
        assert result.removed == []
        assert result.core_sizes == [5]

    def test_validation(self, triangle):
        with pytest.raises(ValueError):
            collapse_kcore_greedy(triangle, 0, 1)
        with pytest.raises(ValueError):
            collapse_kcore_greedy(triangle, 2, -1)
