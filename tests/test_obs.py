"""repro.obs: metrics registry, exporters, trend gate, observational law.

The two load-bearing suites are determinism (two same-seed observed runs
produce byte-identical JSON snapshots) and the observational guarantee
(the blessed regression goldens pass bit-exactly *with a registry
attached*, without re-blessing anything) — the numeric twin of
tests/test_trace.py.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.cache import DiskCache
from repro.bench.runner import BenchCell, execute
from repro.core.batch_dynamic import BatchDynamicKCore
from repro.core.parallel_kcore import ParallelKCore
from repro.generators import grid_2d, suite
from repro.generators.streams import generate_stream
from repro.obs import (
    DEFAULT_MAX_REGRESS,
    OBS_SCHEMA_VERSION,
    SIZE_BOUNDARIES,
    TIME_BOUNDARIES_NS,
    Histogram,
    MetricsRegistry,
    TrendError,
    active_registry,
    diff_reports,
    observing,
    percentile_summary,
    render_dashboard,
    render_epoch_table,
    render_json,
    render_prometheus,
    render_trend,
    write_snapshot,
)
from repro.obs.cli import main as obs_main
from repro.regress.goldens import read_golden
from repro.regress.matrix import run_case, select_cases
from repro.runtime.simulator import SimRuntime
from repro.serve import CoreService, run_service
from repro.serve.__main__ import main as serve_main
from repro.trace import Tracer, render_perfetto, to_perfetto, tracing


# ----------------------------------------------------------------------
# Registry units
# ----------------------------------------------------------------------
class TestRegistry:
    def test_absent_by_default(self):
        assert active_registry() is None
        assert SimRuntime().registry is None

    def test_observing_installs_and_restores(self):
        registry = MetricsRegistry()
        with observing(registry) as installed:
            assert installed is registry
            assert active_registry() is registry
            assert SimRuntime().registry is registry
        assert active_registry() is None

    def test_observing_restores_previous(self):
        outer = MetricsRegistry("outer")
        inner = MetricsRegistry("inner")
        with observing(outer):
            with observing(inner):
                assert active_registry() is inner
            assert active_registry() is outer
        assert active_registry() is None

    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2.5)
        assert registry.value("a") == 3.5
        assert registry.value("missing", default=-1.0) == -1.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            registry.inc("a", -1.0)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3.0)
        registry.set_gauge("depth", 1.0)
        assert registry.value("depth") == 1.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.set_gauge("x", 1.0)

    def test_family_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.inc("x", family="sim")
        with pytest.raises(ValueError, match="never mix"):
            registry.inc("x", family="wall")

    def test_unknown_family_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric family"):
            registry.inc("x", family="cpu")

    def test_histogram_placement(self):
        hist = Histogram("h", "sim", (1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 100.0, 1e6):
            hist.observe(value)
        # bisect_right: a value equal to an edge lands past it.
        assert hist.counts == [1, 2, 0, 2]
        assert hist.count == 5
        assert hist.sum == pytest.approx(0.5 + 1.0 + 5.0 + 100.0 + 1e6)

    def test_histogram_boundaries_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "sim", (1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "sim", ())

    def test_histogram_redeclare_with_other_boundaries_rejected(self):
        registry = MetricsRegistry()
        registry.declare_histogram("h", (1.0, 2.0))
        registry.declare_histogram("h", (1.0, 2.0))  # idempotent
        with pytest.raises(ValueError, match="already declared"):
            registry.declare_histogram("h", (1.0, 3.0))

    def test_observe_defaults_time_boundaries(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1e6)
        assert registry.get("lat").boundaries == TIME_BOUNDARIES_NS

    def test_observe_on_counter_rejected(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError, match="not a histogram"):
            registry.observe("x", 1.0)

    def test_quantile_estimates_are_monotone(self):
        registry = MetricsRegistry()
        for value in range(1, 200):
            registry.observe("h", float(value), boundaries=SIZE_BOUNDARIES)
        hist = registry.get("h")
        q50, q90, q99 = (
            hist.quantile(0.5), hist.quantile(0.9), hist.quantile(0.99)
        )
        assert 0.0 < q50 <= q90 <= q99
        assert Histogram("e", "sim", (1.0,)).quantile(0.5) == 0.0

    def test_marks_snapshot_sim_scalars_only(self):
        registry = MetricsRegistry()
        registry.inc("a", 2.0)
        registry.set_gauge("g", 7.0)
        registry.observe("h", 1.0)
        registry.inc("w", 1.0, family="wall")
        registry.mark(123.0, label="epoch 1")
        (mark,) = registry.marks
        assert mark.ts == 123.0
        assert mark.label == "epoch 1"
        assert mark.values == {"a": 2.0, "g": 7.0}

    def test_merge_counts_and_prefix_filter(self):
        registry = MetricsRegistry()
        registry.inc("cache.graph_npz.hit", 2)
        registry.merge_counts({"cache.graph_npz.hit": 1.0, "other": 4.0})
        assert registry.counter_values("cache.") == {
            "cache.graph_npz.hit": 3.0
        }
        assert registry.counter_values()["other"] == 4.0

    def test_percentile_summary_shape(self):
        summary = percentile_summary([])
        assert summary == {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        summary = percentile_summary([1.0, 2.0, 3.0, 4.0])
        assert summary["p50"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_attach_counts_runtimes(self):
        registry = MetricsRegistry()
        with observing(registry):
            SimRuntime()
            SimRuntime()
        assert registry.attached == 2


# ----------------------------------------------------------------------
# The observational law: metrics change nothing
# ----------------------------------------------------------------------
class TestObservationalLaw:
    def test_ledger_identical_with_and_without_registry(self):
        graph = grid_2d(24, 24)
        plain = ParallelKCore().decompose(graph)
        registry = MetricsRegistry()
        observed = ParallelKCore().decompose(graph, registry=registry)
        assert (plain.coreness == observed.coreness).all()
        assert (
            plain.metrics.to_stable_dict()
            == observed.metrics.to_stable_dict()
        )
        assert registry.value("runtime.rounds") > 0

    def test_batch_dynamic_identical_with_registry(self):
        graph = grid_2d(12, 12)
        registry = MetricsRegistry()
        plain = BatchDynamicKCore(graph)
        observed = BatchDynamicKCore(graph, registry=registry)
        for engine in (plain, observed):
            engine.apply_batch(insertions=[(0, 25), (3, 40)])
            engine.apply_batch(deletions=[(0, 25)])
        assert (plain.coreness == observed.coreness).all()
        assert plain.metrics.to_stable_dict() == (
            observed.metrics.to_stable_dict()
        )
        assert registry.value("dyn.batches") == 2.0
        assert registry.value("dyn.insertions.applied") == 2.0
        assert registry.value("dyn.deletions.applied") == 1.0
        assert registry.get("dyn.batch_size").count == 2

    def test_snapshot_is_byte_deterministic(self):
        def one_run() -> str:
            graph = grid_2d(16, 16)
            registry = MetricsRegistry("det")
            with observing(registry):
                ParallelKCore().decompose(graph)
                events = generate_stream(
                    graph, "steady", batches=3, batch_size=4, seed=1
                )
                run_service(graph, events, registry=registry)
            return render_json(registry)

        assert one_run() == one_run()

    def test_write_snapshot_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("a")
        path = tmp_path / "obs.json"
        write_snapshot(registry, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["obs_schema_version"] == OBS_SCHEMA_VERSION
        assert loaded["families"]["sim"]["counters"]["a"]["value"] == 1.0


class TestGoldensWithMetrics:
    """The observational guarantee against the blessed files.

    Runs every grid-24 matrix case under a process-wide active registry
    and requires the payloads to match the committed goldens bit-exactly
    — metrics on must equal metrics off, which the full-matrix goldens
    test pins (the goldens are never re-blessed for observability).
    """

    @pytest.mark.parametrize(
        "case", select_cases("grid-24"), ids=lambda c: c.case_id
    )
    def test_observed_case_matches_blessed_golden(self, case):
        blessed = read_golden(case.engine)
        assert blessed is not None, f"no golden for {case.engine}"
        with observing(MetricsRegistry(label=case.case_id)) as registry:
            payload = run_case(case)
        assert payload == blessed[case.entry_key]
        assert registry.counter_values()  # the registry saw the run


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def observed_serve(graph=None):
    graph = graph if graph is not None else grid_2d(12, 12)
    registry = MetricsRegistry("serve-test")
    events = generate_stream(
        graph, "steady", batches=4, batch_size=4,
        queries_per_batch=3, seed=0,
    )
    service = CoreService(graph, registry=registry)
    service.replay(events)
    return registry, service


class TestPrometheusExport:
    def test_exposition_format(self):
        registry, _ = observed_serve()
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert text.endswith("\n")
        # Counters: HELP/TYPE pair, _total suffix.
        assert "# TYPE repro_sim_serve_queries_total counter" in lines
        assert any(
            line.startswith("repro_sim_serve_queries_total ")
            for line in lines
        )
        # Histograms: cumulative buckets ending at +Inf == _count.
        assert "# TYPE repro_sim_serve_staleness_ns histogram" in lines
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_sim_serve_staleness_ns_bucket")
        ]
        assert buckets == sorted(buckets)
        count = next(
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_sim_serve_staleness_ns_count")
        )
        assert buckets[-1] == count
        inf_lines = [
            line for line in lines if 'le="+Inf"' in line
            and line.startswith("repro_sim_serve_staleness_ns_bucket")
        ]
        assert len(inf_lines) == 1

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_exposition_deterministic(self):
        first = render_prometheus(observed_serve()[0])
        second = render_prometheus(observed_serve()[0])
        assert first == second


class TestDashboard:
    def test_dashboard_lists_metrics(self):
        registry, _ = observed_serve()
        text = render_dashboard(registry)
        assert "== metrics: serve-test" in text
        assert "[sim]" in text
        assert "serve.queries" in text
        assert "~p50=" in text

    def test_epoch_table_rows(self):
        registry, _ = observed_serve()
        text = render_epoch_table(registry)
        assert "epoch 1" in text
        assert "dyn.batches+1" in text
        assert render_epoch_table(MetricsRegistry()) == (
            "(no epoch marks recorded)"
        )


class TestPerfettoCounterTracks:
    def test_no_registry_is_byte_identical(self):
        graph = grid_2d(12, 12)

        def traced() -> Tracer:
            tracer = Tracer(label="t")
            ParallelKCore().decompose(graph, tracer=tracer)
            return tracer

        assert render_perfetto(traced()) == render_perfetto(
            traced(), registry=None
        )

    def test_marks_become_counter_tracks(self):
        graph = grid_2d(12, 12)
        registry = MetricsRegistry()
        tracer = Tracer(label="serve")
        events = generate_stream(
            graph, "steady", batches=3, batch_size=4, seed=0
        )
        with tracing(tracer):
            service = CoreService(graph, registry=registry)
            service.replay(events)
        doc = to_perfetto(tracer, registry=registry)
        obs_events = [
            e for e in doc["traceEvents"]
            if e["name"].startswith("obs/")
        ]
        assert obs_events
        assert all(e["ph"] == "C" for e in obs_events)
        batch_samples = [
            e["args"]["value"]
            for e in obs_events
            if e["name"] == "obs/dyn.batches"
        ]
        # One sample per epoch mark plus the final snapshot.
        assert batch_samples == [1.0, 2.0, 3.0, 3.0]
        ts = [e["ts"] for e in obs_events]
        assert ts == sorted(ts)


# ----------------------------------------------------------------------
# Instrumented subsystems: kernels, caches, bench matrix
# ----------------------------------------------------------------------
class TestSubsystemCounters:
    def test_kernel_mode_counters(self, monkeypatch):
        from repro.perf import kernel_mode

        monkeypatch.setenv("REPRO_KERNELS", "vectorized")
        registry = MetricsRegistry()
        with observing(registry):
            kernel_mode()
            kernel_mode()
        assert registry.value("kernel.mode.vectorized") == 2.0

    def test_graph_cache_counters(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path))
        registry = MetricsRegistry()
        with observing(registry):
            suite.load.cache_clear()
            suite.load("GRID", size="tiny")
            suite.load.cache_clear()
            suite.load("GRID", size="tiny")
        suite.load.cache_clear()
        assert registry.value("cache.graph_npz.miss") == 1.0
        assert registry.value("cache.graph_npz.hit") == 1.0

    def test_bench_summary_caches_section(self, tmp_path):
        cache = DiskCache(str(tmp_path / "bench"))
        cells = [
            BenchCell("ours", "GRID", size="tiny", kernels="vectorized")
        ]
        registry = MetricsRegistry()
        with observing(registry):
            cold = execute(cells, cache=cache)
        assert cold["schema_version"] == 4
        caches = cold["summary"]["caches"]
        assert caches["bench_cell"] == {"miss": 1}
        warm = execute(cells, cache=cache)
        assert warm["summary"]["caches"]["bench_cell"] == {"hit": 1}
        assert registry.value("cache.bench_cell.miss") == 1.0

    def test_cached_payloads_identical_with_metrics(self, tmp_path):
        cells = [
            BenchCell("bz", "GRID", size="tiny", kernels="vectorized")
        ]
        plain = execute(cells, cache=DiskCache(str(tmp_path / "a")))
        with observing(MetricsRegistry()):
            observed = execute(cells, cache=DiskCache(str(tmp_path / "b")))
        strip = (
            lambda rep: [
                {
                    k: v
                    for k, v in cell.items()
                    if k not in ("wall_s", "max_rss_kb")
                }
                for cell in rep["cells"]
            ]
        )
        assert strip(plain) == strip(observed)


# ----------------------------------------------------------------------
# The trend gate
# ----------------------------------------------------------------------
def make_report(walls: dict[tuple[str, str], float], size="tiny",
                kernels="vectorized") -> dict:
    return {
        "schema_version": 4,
        "cells": [
            {
                "engine": engine,
                "graph": graph,
                "size": size,
                "kernels": kernels,
                "wall_s": wall,
            }
            for (engine, graph), wall in sorted(walls.items())
        ],
    }


def write_report(tmp_path, name: str, report: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


class TestTrendGate:
    BASE = {
        ("ours", "GRID"): 1.0,
        ("ours", "HPL"): 2.0,
        ("bz", "GRID"): 4.0,
    }

    def test_clean_diff_ok(self):
        result = diff_reports(
            make_report(self.BASE), make_report(self.BASE)
        )
        assert result["ok"] is True
        assert result["cells_matched"] == 3
        assert result["regressions"] == []
        assert result["overall"]["ratio"] == 1.0

    def test_seeded_regression_caught(self):
        slower = {**self.BASE, ("ours", "GRID"): 2.0}
        result = diff_reports(
            make_report(self.BASE), make_report(slower)
        )
        assert result["ok"] is False
        levels = {reg["level"] for reg in result["regressions"]}
        assert "cell" in levels
        cell = next(
            r for r in result["regressions"] if r["level"] == "cell"
        )
        assert (cell["engine"], cell["graph"]) == ("ours", "GRID")
        assert cell["ratio"] == 2.0

    def test_threshold_edge(self):
        at_edge = {key: wall * DEFAULT_MAX_REGRESS
                   for key, wall in self.BASE.items()}
        result = diff_reports(
            make_report(self.BASE), make_report(at_edge)
        )
        assert result["ok"] is True  # ratio == max_regress passes
        past = {key: wall * (DEFAULT_MAX_REGRESS + 0.01)
                for key, wall in self.BASE.items()}
        result = diff_reports(make_report(self.BASE), make_report(past))
        assert result["ok"] is False

    def test_noise_floor_skips_tiny_cells(self):
        old = {("ours", "GRID"): 0.004}
        new = {("ours", "GRID"): 0.008}  # 2x, but both sub-floor
        result = diff_reports(make_report(old), make_report(new))
        assert result["ok"] is True
        assert result["cells"][0]["compared"] is False
        # ... unless the new side blows past 10x the floor.
        blown = {("ours", "GRID"): 0.6}
        result = diff_reports(make_report(old), make_report(blown))
        assert result["ok"] is False

    def test_kernel_mode_relaxed_matching(self):
        old = make_report(self.BASE, kernels="native")
        new = make_report(self.BASE, kernels="vectorized")
        result = diff_reports(old, new)
        assert result["cells_matched"] == 3

    def test_no_overlap_raises(self):
        old = make_report({("ours", "GRID"): 1.0})
        new = make_report({("ours", "HPL"): 1.0})
        with pytest.raises(TrendError, match="no cells match"):
            diff_reports(old, new)

    def test_render_trend_mentions_regression(self):
        slower = {**self.BASE, ("ours", "GRID"): 3.0}
        result = diff_reports(
            make_report(self.BASE), make_report(slower)
        )
        text = render_trend(result)
        assert "REGRESSION [ours/GRID/tiny]" in text
        clean = diff_reports(make_report(self.BASE), make_report(self.BASE))
        assert "trend: OK" in render_trend(clean)


class TestTrendCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        old = write_report(tmp_path, "a.json", make_report(TestTrendGate.BASE))
        new = write_report(tmp_path, "b.json", make_report(TestTrendGate.BASE))
        assert obs_main(["trend", old, new]) == 0
        assert "trend: OK" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        old = write_report(tmp_path, "a.json", make_report(TestTrendGate.BASE))
        slower = {**TestTrendGate.BASE, ("ours", "GRID"): 2.0}
        new = write_report(tmp_path, "b.json", make_report(slower))
        assert obs_main(["trend", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_max_regress_flag(self, tmp_path, capsys):
        old = write_report(tmp_path, "a.json", make_report(TestTrendGate.BASE))
        slower = {key: wall * 1.5 for key, wall in TestTrendGate.BASE.items()}
        new = write_report(tmp_path, "b.json", make_report(slower))
        assert obs_main(["trend", old, new, "--max-regress", "2.0"]) == 0
        capsys.readouterr()
        assert obs_main(["trend", old, new, "--max-regress", "1.4"]) == 1

    def test_json_output(self, tmp_path, capsys):
        old = write_report(tmp_path, "a.json", make_report(TestTrendGate.BASE))
        new = write_report(tmp_path, "b.json", make_report(TestTrendGate.BASE))
        assert obs_main(["trend", old, new, "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["ok"] is True
        assert result["cells_matched"] == 3

    def test_unreadable_report_exit_two(self, tmp_path, capsys):
        old = write_report(tmp_path, "a.json", make_report(TestTrendGate.BASE))
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert obs_main(["trend", old, str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
        assert obs_main(["trend", old, str(tmp_path / "nope.json")]) == 2

    def test_old_schema_rejected(self, tmp_path, capsys):
        report = make_report(TestTrendGate.BASE)
        report["schema_version"] = 1
        old = write_report(tmp_path, "a.json", report)
        new = write_report(tmp_path, "b.json", make_report(TestTrendGate.BASE))
        assert obs_main(["trend", old, new]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_committed_baseline_is_readable(self, tmp_path):
        from repro.obs.trend import load_report

        baseline = str(
            Path(__file__).resolve().parents[1]
            / "BENCH_wallclock_tiny.json"
        )
        report = load_report(baseline)
        assert report["cells"]
        path = write_report(tmp_path, "same.json", report)
        assert obs_main(["trend", baseline, path]) == 0


# ----------------------------------------------------------------------
# Serve CLI metrics flags
# ----------------------------------------------------------------------
class TestServeCliMetrics:
    def test_metrics_flags(self, tmp_path, capsys):
        snapshot = tmp_path / "obs.json"
        prom = tmp_path / "metrics.prom"
        status = serve_main(
            [
                "--tiny",
                "--graph", "GRID",
                "--metrics",
                "--metrics-output", str(snapshot),
                "--prom", str(prom),
                "--output", str(tmp_path / "report.json"),
            ]
        )
        assert status == 0
        err = capsys.readouterr().err
        assert "== metrics:" in err
        assert "per-epoch counters" in err
        loaded = json.loads(snapshot.read_text())
        assert loaded["obs_schema_version"] == OBS_SCHEMA_VERSION
        assert "serve.queries" in loaded["families"]["sim"]["counters"]
        assert len(loaded["marks"]) == 12  # one per committed epoch
        text = prom.read_text()
        assert "# TYPE repro_sim_serve_queries_total counter" in text

    def test_metrics_snapshot_deterministic(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            status = serve_main(
                [
                    "--tiny", "--graph", "GRID", "--seed", "5",
                    "--metrics-output", str(path),
                    "--output", str(tmp_path / ("r-" + name)),
                ]
            )
            assert status == 0
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
