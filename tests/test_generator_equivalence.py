"""Generator equivalence and suite graph pinning.

Two guards around the vectorized generators:

* the vectorized Barabási–Albert builder must be *bit-identical* (same
  RNG stream, same edge order, same CSR arrays) to the straight-line
  reference implementation in :mod:`repro.generators.reference` for
  every suite recipe that uses it — a performance change to a generator
  must never change the graphs the benchmarks and goldens run on;
* every suite entry's tiny rendition is pinned by sha256 in
  ``tests/data/graph_sha256.json`` — the committed fingerprint of the
  whole corpus.  Regenerate (after an *intentional* suite change) with::

      PYTHONPATH=src python tests/test_generator_equivalence.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.generators import suite
from repro.generators.powerlaw import barabasi_albert
from repro.generators.reference import barabasi_albert_reference
from repro.graphs.csr import CSRGraph

PINS_PATH = Path(__file__).parent / "data" / "graph_sha256.json"

#: Every (spec, tier) recipe built on the serial BA urn construction.
BA_RECIPES = [
    (name, size)
    for name, spec in suite.SUITE.items()
    for size in ("tiny", "full")
    if spec.recipe(size)[0] == "barabasi_albert"
]


def graph_sha256(graph: CSRGraph) -> str:
    digest = hashlib.sha256()
    digest.update(str(graph.n).encode())
    digest.update(np.ascontiguousarray(graph.indptr).tobytes())
    digest.update(np.ascontiguousarray(graph.indices).tobytes())
    return digest.hexdigest()


@pytest.mark.parametrize("name,size", BA_RECIPES)
def test_ba_vectorized_matches_reference(name, size):
    _, params = suite.SUITE[name].recipe(size)
    fast = barabasi_albert(**params)
    slow = barabasi_albert_reference(**params)
    assert fast.n == slow.n
    assert np.array_equal(fast.indptr, slow.indptr)
    assert np.array_equal(fast.indices, slow.indices)


def _current_pins() -> dict[str, str]:
    return {
        name: graph_sha256(spec.build_tiny())
        for name, spec in sorted(suite.SUITE.items())
    }


def test_tiny_suite_sha256_pinned():
    pinned = json.loads(PINS_PATH.read_text())
    current = _current_pins()
    assert current == pinned, (
        "suite graphs changed; if intentional, regenerate "
        "tests/data/graph_sha256.json (see module docstring)"
    )


def test_cache_key_covers_seed_and_params():
    spec = suite.SUITE["LJ-S"]
    keys = {spec.cache_key(size) for size in suite.SIZES}
    assert len(keys) == len(suite.SIZES)


if __name__ == "__main__":
    PINS_PATH.parent.mkdir(parents=True, exist_ok=True)
    PINS_PATH.write_text(
        json.dumps(_current_pins(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {PINS_PATH}")
