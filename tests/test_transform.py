"""Tests for graph transformations."""

import numpy as np
import pytest

from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    grid_2d,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.transform import (
    add_edges,
    all_edges,
    disjoint_union,
    largest_connected_component,
    permutation_of_relabel,
    relabel_random,
    remove_edges,
    remove_vertices,
)


class TestAllEdges:
    def test_count(self, small_er):
        assert all_edges(small_er).shape == (small_er.num_edges, 2)

    def test_round_trip(self, small_er):
        rebuilt = CSRGraph.from_edges(small_er.n, all_edges(small_er))
        assert rebuilt == small_er


class TestLCC:
    def test_keeps_biggest(self):
        g = CSRGraph.from_edges(
            8, [(0, 1), (1, 2), (2, 0), (3, 4)]
        )
        lcc = largest_connected_component(g)
        assert lcc.n == 3
        assert lcc.num_edges == 3

    def test_connected_graph_unchanged_size(self):
        g = grid_2d(5, 5)
        assert largest_connected_component(g).n == g.n

    def test_empty(self):
        g = empty_graph(0)
        assert largest_connected_component(g).n == 0


class TestEdgeEdits:
    def test_add_edges(self, triangle):
        g = add_edges(triangle, [(0, 1)])  # duplicate: no change
        assert g == triangle
        g2 = add_edges(
            CSRGraph.from_edges(4, [(0, 1)]), [(2, 3), (1, 2)]
        )
        assert g2.num_edges == 3

    def test_remove_edges(self, triangle):
        g = remove_edges(triangle, [(1, 0)])  # order-insensitive
        assert g.num_edges == 2

    def test_remove_missing_edge_noop(self, triangle):
        g = remove_edges(triangle, [(0, 0)])
        assert g == triangle

    def test_remove_vertices(self):
        g = complete_graph(5)
        sub = remove_vertices(g, [0, 1])
        assert sub.n == 3
        assert sub.num_edges == 3  # K3 remains


class TestUnionAndRelabel:
    def test_disjoint_union_sizes(self):
        a, b = complete_graph(4), cycle_graph(5)
        u = disjoint_union(a, b)
        assert u.n == 9
        assert u.num_edges == a.num_edges + b.num_edges

    def test_disjoint_union_coreness_concatenates(self):
        a, b = complete_graph(4), cycle_graph(5)
        u = disjoint_union(a, b)
        kappa = reference_coreness(u)
        assert np.all(kappa[:4] == 3)
        assert np.all(kappa[4:] == 2)

    def test_relabel_preserves_coreness_multiset(self, small_er):
        relabeled = relabel_random(small_er, seed=5)
        a = np.sort(reference_coreness(small_er))
        b = np.sort(reference_coreness(relabeled))
        assert np.array_equal(a, b)

    def test_relabel_permutation_consistent(self, small_er):
        perm = permutation_of_relabel(small_er, seed=5)
        relabeled = relabel_random(small_er, seed=5)
        kappa = reference_coreness(small_er)
        kappa_relabel = reference_coreness(relabeled)
        assert np.array_equal(kappa_relabel[perm], kappa)

    def test_algorithms_invariant_under_relabeling(self, small_er):
        """Decomposition must not depend on vertex id order."""
        from repro.core.parallel_kcore import ParallelKCore

        perm = permutation_of_relabel(small_er, seed=7)
        relabeled = relabel_random(small_er, seed=7)
        original = ParallelKCore().coreness(small_er)
        shuffled = ParallelKCore().coreness(relabeled)
        assert np.array_equal(shuffled[perm], original)
