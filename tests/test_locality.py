"""Tests for the H-index locality algorithm."""

import numpy as np
import pytest

from repro.core.locality import h_index, hindex_coreness
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi,
    grid_2d,
    hcns,
    path_graph,
    star_graph,
)


class TestHIndex:
    def test_known_values(self):
        assert h_index(np.array([3, 0, 6, 1, 5])) == 3
        assert h_index(np.array([10, 8, 5, 4, 3])) == 4
        assert h_index(np.array([1, 1, 1])) == 1
        assert h_index(np.array([0, 0])) == 0
        assert h_index(np.array([], dtype=np.int64)) == 0

    def test_uniform(self):
        assert h_index(np.full(7, 7)) == 7
        assert h_index(np.full(7, 100)) == 7

    def test_single(self):
        assert h_index(np.array([5])) == 1
        assert h_index(np.array([0])) == 0

    def test_bounded_by_size_and_max(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            values = rng.integers(0, 20, size=rng.integers(1, 30))
            h = h_index(values)
            assert 0 <= h <= min(values.size, values.max(initial=0))
            if h:
                assert (values >= h).sum() >= h
            assert (values >= h + 1).sum() < h + 1


class TestHIndexCoreness:
    def test_agrees_with_reference(self, any_graph):
        result = hindex_coreness(any_graph)
        assert np.array_equal(
            result.coreness, reference_coreness(any_graph)
        )

    def test_er(self, medium_er):
        result = hindex_coreness(medium_er)
        assert np.array_equal(
            result.coreness, reference_coreness(medium_er)
        )

    def test_round_count_small_on_dense(self):
        result = hindex_coreness(complete_graph(30))
        # A clique converges immediately (degree == coreness).
        assert result.metrics.rounds <= 2

    def test_path_needs_rounds_proportional_to_length(self):
        # Information travels one hop per round on a path.
        short = hindex_coreness(path_graph(10)).metrics.rounds
        long = hindex_coreness(path_graph(60)).metrics.rounds
        assert long > short

    def test_round_limit_raises(self):
        with pytest.raises(RuntimeError):
            hindex_coreness(path_graph(100), max_rounds=2)

    def test_empty(self):
        result = hindex_coreness(empty_graph(4))
        assert np.all(result.coreness == 0)

    def test_estimates_decrease_monotonically(self):
        """Estimates start at the degree and never go below coreness."""
        g = erdos_renyi(200, 6.0, seed=9)
        exact = reference_coreness(g)
        result = hindex_coreness(g)
        assert np.all(result.coreness == exact)
        assert np.all(exact <= g.degrees)

    def test_algorithm_label(self, triangle):
        assert hindex_coreness(triangle).algorithm == "hindex"

    def test_hcns(self):
        g = hcns(32)
        assert np.array_equal(
            hindex_coreness(g).coreness, reference_coreness(g)
        )
