"""Tests for the sequential algorithms (BZ, Matula–Beck)."""

import numpy as np
import pytest

from repro.core.sequential import bz_core, degeneracy, degeneracy_order
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    erdos_renyi,
    grid_2d,
    hcns,
    path_graph,
    star_graph,
)


class TestBZ:
    def test_agrees_with_reference(self, any_graph):
        assert np.array_equal(
            bz_core(any_graph).coreness, reference_coreness(any_graph)
        )

    def test_work_is_linear(self):
        g = erdos_renyi(1000, 8.0, seed=1)
        result = bz_core(g)
        # O(n + m) with a small constant.
        assert result.metrics.work <= 4 * (g.n + g.m)

    def test_time_on_one_thread_equals_work(self, small_er):
        result = bz_core(small_er)
        assert result.time_on(1) == result.metrics.work

    def test_algorithm_label(self, triangle):
        assert bz_core(triangle).algorithm == "bz"


class TestDegeneracyOrder:
    def test_order_is_permutation(self, small_er):
        order, _ = degeneracy_order(small_er)
        assert sorted(order.tolist()) == list(range(small_er.n))

    def test_smallest_last_property(self, medium_er):
        """Each vertex has at most kappa(v) neighbors later in the order."""
        order, coreness = degeneracy_order(medium_er)
        position = np.empty(medium_er.n, dtype=np.int64)
        position[order] = np.arange(medium_er.n)
        for v in range(medium_er.n):
            later = sum(
                1
                for u in medium_er.neighbors(v)
                if position[u] > position[v]
            )
            assert later <= coreness.max()

    def test_degeneracy_bound_property(self, medium_er):
        """The degeneracy ordering certifies the degeneracy value."""
        order, coreness = degeneracy_order(medium_er)
        degeneracy_value = int(coreness.max())
        position = np.empty(medium_er.n, dtype=np.int64)
        position[order] = np.arange(medium_er.n)
        worst = 0
        for v in range(medium_er.n):
            later = sum(
                1
                for u in medium_er.neighbors(v)
                if position[u] > position[v]
            )
            worst = max(worst, later)
        assert worst == degeneracy_value

    def test_degeneracy_known_values(self):
        assert degeneracy(complete_graph(7)) == 6
        assert degeneracy(star_graph(10)) == 1
        assert degeneracy(path_graph(10)) == 1
        assert degeneracy(grid_2d(6, 6)) == 2
        assert degeneracy(hcns(9)) == 9

    def test_degeneracy_empty_graph(self):
        from repro.generators import empty_graph

        assert degeneracy(empty_graph(0)) == 0
        assert degeneracy(empty_graph(4)) == 0
