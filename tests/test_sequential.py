"""Tests for the sequential algorithms (BZ, Matula–Beck)."""

import numpy as np
import pytest

from repro.core.sequential import (
    _bz_peel,
    _bz_peel_flat,
    bz_core,
    degeneracy,
    degeneracy_order,
)
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    erdos_renyi,
    grid_2d,
    hcns,
    path_graph,
    star_graph,
    suite,
)
from repro.perf import KERNELS_ENV, REFERENCE
from repro.runtime.cost_model import DEFAULT_COST_MODEL


class TestBZ:
    def test_agrees_with_reference(self, any_graph):
        assert np.array_equal(
            bz_core(any_graph).coreness, reference_coreness(any_graph)
        )

    def test_flat_peel_matches_reference_peel(self, any_graph):
        """The NumPy level peel: same coreness, same op count."""
        core_ref, _, ops_ref = _bz_peel(any_graph)
        core_flat, ops_flat = _bz_peel_flat(any_graph)
        assert np.array_equal(core_ref, core_flat)
        assert ops_ref == ops_flat

    def test_flat_peel_matches_across_tiny_suite(self):
        """Coreness + full RunMetrics ledger agree on every suite family."""
        for name in suite.SUITE:
            graph = suite.load(name, tiny=True)
            core_ref, _, ops_ref = _bz_peel(graph)
            core_flat, ops_flat = _bz_peel_flat(graph)
            assert np.array_equal(core_ref, core_flat), name
            assert ops_ref == ops_flat, name

    def test_bz_core_ledger_identical_across_modes(self, monkeypatch):
        graph = suite.load("LJ-S", tiny=True)
        monkeypatch.setenv(KERNELS_ENV, REFERENCE)
        ref = bz_core(graph)
        monkeypatch.setenv(KERNELS_ENV, "vectorized")
        flat = bz_core(graph)
        assert np.array_equal(ref.coreness, flat.coreness)
        assert ref.metrics.to_stable_dict(
            DEFAULT_COST_MODEL
        ) == flat.metrics.to_stable_dict(DEFAULT_COST_MODEL)

    def test_flat_peel_empty_graph(self):
        from repro.graphs.csr import CSRGraph

        graph = CSRGraph(
            np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        coreness, ops = _bz_peel_flat(graph)
        assert coreness.size == 0
        assert ops == 0

    def test_work_is_linear(self):
        g = erdos_renyi(1000, 8.0, seed=1)
        result = bz_core(g)
        # O(n + m) with a small constant.
        assert result.metrics.work <= 4 * (g.n + g.m)

    def test_time_on_one_thread_equals_work(self, small_er):
        result = bz_core(small_er)
        assert result.time_on(1) == result.metrics.work

    def test_algorithm_label(self, triangle):
        assert bz_core(triangle).algorithm == "bz"


class TestDegeneracyOrder:
    def test_order_is_permutation(self, small_er):
        order, _ = degeneracy_order(small_er)
        assert sorted(order.tolist()) == list(range(small_er.n))

    def test_smallest_last_property(self, medium_er):
        """Each vertex has at most kappa(v) neighbors later in the order."""
        order, coreness = degeneracy_order(medium_er)
        position = np.empty(medium_er.n, dtype=np.int64)
        position[order] = np.arange(medium_er.n)
        for v in range(medium_er.n):
            later = sum(
                1
                for u in medium_er.neighbors(v)
                if position[u] > position[v]
            )
            assert later <= coreness.max()

    def test_degeneracy_bound_property(self, medium_er):
        """The degeneracy ordering certifies the degeneracy value."""
        order, coreness = degeneracy_order(medium_er)
        degeneracy_value = int(coreness.max())
        position = np.empty(medium_er.n, dtype=np.int64)
        position[order] = np.arange(medium_er.n)
        worst = 0
        for v in range(medium_er.n):
            later = sum(
                1
                for u in medium_er.neighbors(v)
                if position[u] > position[v]
            )
            worst = max(worst, later)
        assert worst == degeneracy_value

    def test_degeneracy_known_values(self):
        assert degeneracy(complete_graph(7)) == 6
        assert degeneracy(star_graph(10)) == 1
        assert degeneracy(path_graph(10)) == 1
        assert degeneracy(grid_2d(6, 6)) == 2
        assert degeneracy(hcns(9)) == 9

    def test_degeneracy_empty_graph(self):
        from repro.generators import empty_graph

        assert degeneracy(empty_graph(0)) == 0
        assert degeneracy(empty_graph(4)) == 0
