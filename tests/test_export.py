"""Tests for the experiment-record exporters."""

import json

import pytest

from repro.analysis.experiments import RunRecord, run_on
from repro.analysis.export import (
    markdown_table,
    records_from_json,
    records_to_csv,
    records_to_json,
    records_to_markdown,
)
from repro.generators import erdos_renyi


@pytest.fixture
def records():
    g = erdos_renyi(120, 5.0, seed=6)
    return [run_on(a, g) for a in ("ours", "bz")]


class TestJson:
    def test_round_trip(self, records, tmp_path):
        path = tmp_path / "runs.json"
        records_to_json(records, path)
        loaded = records_from_json(path)
        assert loaded == records

    def test_valid_json(self, records, tmp_path):
        path = tmp_path / "runs.json"
        records_to_json(records, path)
        payload = json.loads(path.read_text())
        assert len(payload) == 2
        assert payload[0]["graph"] == records[0].graph


class TestCsv:
    def test_header_and_rows(self, records, tmp_path):
        path = tmp_path / "runs.csv"
        records_to_csv(records, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert "algorithm" in lines[0]

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        records_to_csv([], path)
        assert path.read_text() == ""


class TestMarkdown:
    def test_table_shape(self):
        text = markdown_table(("a", "b"), [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "2.500" in lines[2]

    def test_records_to_markdown(self, records):
        text = records_to_markdown(records)
        assert "| graph |" in text
        assert "bz" in text
