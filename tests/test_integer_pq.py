"""Tests for the monotone integer priority queue and Dial SSSP."""

import heapq

import numpy as np
import pytest

from repro.errors import BucketStructureError
from repro.generators import erdos_renyi, grid_2d, path_graph
from repro.structures.integer_pq import MonotoneIntPQ, dial_sssp


class TestPQBasics:
    def test_insert_extract(self):
        pq = MonotoneIntPQ(capacity=10)
        pq.insert(1, 5)
        pq.insert(2, 3)
        pq.insert(3, 5)
        key, items = pq.extract_min_bucket()
        assert key == 3 and items == [2]
        key, items = pq.extract_min_bucket()
        assert key == 5 and sorted(items) == [1, 3]
        assert pq.is_empty()

    def test_len_tracks_items(self):
        pq = MonotoneIntPQ(capacity=4)
        pq.insert(1, 1)
        pq.insert(2, 2)
        assert len(pq) == 2
        pq.extract_min_bucket()
        assert len(pq) == 1

    def test_decrease_key(self):
        pq = MonotoneIntPQ(capacity=4)
        pq.insert(1, 100)
        pq.insert(2, 10)
        pq.decrease_key(1, 5)
        key, items = pq.extract_min_bucket()
        assert key == 5 and items == [1]

    def test_decrease_key_ignores_increase(self):
        pq = MonotoneIntPQ(capacity=4)
        pq.insert(1, 5)
        pq.decrease_key(1, 50)  # no-op
        key, _ = pq.extract_min_bucket()
        assert key == 5

    def test_insert_existing_lowers(self):
        pq = MonotoneIntPQ(capacity=4)
        pq.insert(1, 9)
        pq.insert(1, 4)
        key, _ = pq.extract_min_bucket()
        assert key == 4
        assert pq.is_empty()

    def test_monotone_violation_raises(self):
        pq = MonotoneIntPQ(capacity=4)
        pq.insert(1, 10)
        pq.extract_min_bucket()
        with pytest.raises(BucketStructureError):
            pq.insert(2, 3)  # below the extracted floor

    def test_extract_empty_raises(self):
        with pytest.raises(BucketStructureError):
            MonotoneIntPQ(capacity=2).extract_min_bucket()

    def test_key_growth_beyond_initial_layout(self):
        pq = MonotoneIntPQ(capacity=4, max_key=8)
        pq.insert(1, 100_000)
        key, items = pq.extract_min_bucket()
        assert key == 100_000 and items == [1]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MonotoneIntPQ(capacity=0)

    def test_find_min_key(self):
        pq = MonotoneIntPQ(capacity=4)
        assert pq.find_min_key() is None
        pq.insert(1, 7)
        pq.insert(2, 3)
        assert pq.find_min_key() == 3


class TestAgainstHeap:
    def test_monotone_sequence_matches_heapq(self, rng):
        """Random monotone workload: extraction order matches a heap."""
        pq = MonotoneIntPQ(capacity=256)
        heap: list[tuple[int, int]] = []
        best: dict[int, int] = {}
        floor = 0
        next_id = 0
        extracted_pq: list[tuple[int, int]] = []
        extracted_heap: list[tuple[int, int]] = []
        for _ in range(300):
            if rng.random() < 0.6 or not best:
                key = floor + int(rng.integers(0, 50))
                pq.insert(next_id, key)
                heapq.heappush(heap, (key, next_id))
                best[next_id] = key
                next_id += 1
            else:
                key, items = pq.extract_min_bucket()
                floor = key
                for item in items:
                    extracted_pq.append((key, item))
                    del best[item]
                while heap and (
                    heap[0][1] not in best or best[heap[0][1]] != heap[0][0]
                ):
                    heapq.heappop(heap)  # stale heap entries
                while heap and heap[0][0] == key:
                    k, item = heapq.heappop(heap)
                    if item in best and best[item] == k:
                        pass
                    extracted_heap.append((k, item))
        # Keys extracted in non-decreasing order.
        keys = [k for k, _ in extracted_pq]
        assert keys == sorted(keys)


def _dijkstra_reference(graph, weights, source):
    dist = {source: 0}
    heap = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist.get(v, float("inf")):
            continue
        for idx in range(graph.indptr[v], graph.indptr[v + 1]):
            u = int(graph.indices[idx])
            nd = d + int(weights[idx])
            if nd < dist.get(u, float("inf")):
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    out = np.full(graph.n, -1, dtype=np.int64)
    for v, d in dist.items():
        out[v] = d
    return out


class TestDialSSSP:
    def test_unit_weights_equal_bfs_levels(self):
        g = grid_2d(8, 8)
        weights = np.ones(g.m, dtype=np.int64)
        dist = dial_sssp(g, weights, 0)
        assert dist[0] == 0
        assert dist[1] == 1
        assert dist[g.n - 1] == 14  # Manhattan distance on the grid

    def test_matches_dijkstra_on_random_graph(self, rng):
        g = erdos_renyi(120, 5.0, seed=3)
        weights = rng.integers(1, 9, size=g.m).astype(np.int64)
        # Symmetrize weights so both arc directions agree (undirected).
        src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
        key = np.minimum(src, g.indices) * g.n + np.maximum(src, g.indices)
        canon: dict[int, int] = {}
        for i, k in enumerate(key.tolist()):
            canon.setdefault(k, int(weights[i]))
            weights[i] = canon[k]
        expected = _dijkstra_reference(g, weights, 0)
        got = dial_sssp(g, weights, 0)
        assert np.array_equal(got, expected)

    def test_unreachable_vertices(self):
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(4, [(0, 1)])
        dist = dial_sssp(g, np.ones(g.m, dtype=np.int64), 0)
        assert list(dist) == [0, 1, -1, -1]

    def test_path_distances(self):
        g = path_graph(6)
        dist = dial_sssp(g, np.full(g.m, 3, dtype=np.int64), 0)
        assert list(dist) == [0, 3, 6, 9, 12, 15]

    def test_validation(self, triangle):
        with pytest.raises(ValueError):
            dial_sssp(triangle, np.ones(2, dtype=np.int64), 0)
        with pytest.raises(ValueError):
            dial_sssp(
                triangle, np.zeros(triangle.m, dtype=np.int64), 0
            )
        with pytest.raises(IndexError):
            dial_sssp(
                triangle, np.ones(triangle.m, dtype=np.int64), 9
            )
