"""Tests for max k-core subgraph extraction (Appendix B)."""

import numpy as np
import pytest

from repro.core.parallel_kcore import ParallelKCore
from repro.core.subgraph import max_kcore_subgraph
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    empty_graph,
    grid_2d,
    power_law_with_hub,
)


def expected_members(graph, k):
    return reference_coreness(graph) >= k


@pytest.mark.parametrize("sampling", [False, True], ids=["exact", "sampled"])
@pytest.mark.parametrize("vgc", [False, True], ids=["flat", "vgc"])
class TestCorrectness:
    def test_matches_reference(self, any_graph, sampling, vgc):
        for k in (0, 1, 2, 3, 5):
            result = max_kcore_subgraph(
                any_graph, k, sampling=sampling, vgc=vgc
            )
            assert np.array_equal(
                result.members, expected_members(any_graph, k)
            ), k

    def test_hub_graph(self, hub_graph, sampling, vgc):
        for k in (2, 4, 6):
            result = max_kcore_subgraph(
                hub_graph, k, sampling=sampling, vgc=vgc
            )
            assert np.array_equal(
                result.members, expected_members(hub_graph, k)
            ), k


class TestEdgeCases:
    def test_k_zero_keeps_everything(self, small_er):
        result = max_kcore_subgraph(small_er, 0)
        assert result.size == small_er.n

    def test_k_above_max_degree_empty(self, small_grid):
        result = max_kcore_subgraph(small_grid, 100)
        assert result.size == 0

    def test_negative_k_rejected(self, triangle):
        with pytest.raises(ValueError):
            max_kcore_subgraph(triangle, -1)

    def test_empty_graph(self):
        result = max_kcore_subgraph(empty_graph(5), 1)
        assert result.size == 0

    def test_clique_all_in(self):
        result = max_kcore_subgraph(complete_graph(20), 19)
        assert result.size == 20


class TestResultHelpers:
    def test_vertex_ids(self, small_grid):
        result = max_kcore_subgraph(small_grid, 2)
        ids = result.vertex_ids()
        assert np.array_equal(
            np.sort(ids), np.nonzero(result.members)[0]
        )

    def test_extract_induced_subgraph(self):
        g = grid_2d(10, 10)
        result = max_kcore_subgraph(g, 2)
        sub = result.extract(g)
        assert sub.n == result.size
        # Every vertex of the extracted 2-core has degree >= 2.
        assert sub.degrees.min() >= 2

    def test_algorithm_label(self, small_er):
        assert max_kcore_subgraph(small_er, 2).algorithm == "ours+sample+vgc"
        assert (
            max_kcore_subgraph(small_er, 2, sampling=False, vgc=False).algorithm
            == "ours"
        )


class TestSolverIntegration:
    def test_parallel_kcore_core_subgraph(self, medium_er):
        solver = ParallelKCore()
        for k in (2, 4):
            result = solver.core_subgraph(medium_er, k)
            assert np.array_equal(
                result.members, expected_members(medium_er, k)
            )

    def test_metrics_collected(self, medium_er):
        result = max_kcore_subgraph(medium_er, 3)
        assert result.metrics.work > 0
        assert result.metrics.subrounds > 0

    def test_minimum_degree_invariant(self):
        """Every member keeps >= k neighbors inside the extracted core."""
        g = power_law_with_hub(1500, 4, hub_count=2, hub_degree=400, seed=6)
        k = 5
        result = max_kcore_subgraph(g, k)
        members = result.members
        for v in np.nonzero(members)[0]:
            inside = int(members[g.neighbors(v)].sum())
            assert inside >= k

    def test_maximality_invariant(self):
        """No vertex outside the core would survive if added back."""
        g = power_law_with_hub(1500, 4, hub_count=2, hub_degree=400, seed=6)
        k = 5
        members = max_kcore_subgraph(g, k).members
        assert np.array_equal(members, expected_members(g, k))
