"""Tests for the (3,4)-nucleus decomposition."""

import numpy as np
import pytest

from repro.core.nucleus import (
    enumerate_triangles,
    max_nucleus_34,
    nucleus_decomposition_34,
)
from repro.core.truss import truss_decomposition
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
)
from repro.graphs.csr import CSRGraph


class TestTriangleEnumeration:
    def test_single_triangle(self, triangle):
        assert enumerate_triangles(triangle) == [(0, 1, 2)]

    def test_clique_count(self):
        g = complete_graph(6)
        assert len(enumerate_triangles(g)) == 20  # C(6,3)

    def test_triangle_free(self):
        assert enumerate_triangles(grid_2d(5, 5)) == []
        assert enumerate_triangles(cycle_graph(8)) == []

    def test_triples_sorted_and_unique(self):
        g = erdos_renyi(60, 8.0, seed=1)
        triangles = enumerate_triangles(g)
        assert len(set(triangles)) == len(triangles)
        for u, v, w in triangles:
            assert u < v < w


class TestNucleus34:
    def test_clique_value(self):
        # In K_n every triangle sits in n-3 four-cliques; by symmetry the
        # (3,4)-nucleus number of every triangle is n-3.
        for n in (4, 5, 6, 7):
            g = complete_graph(n)
            values = nucleus_decomposition_34(g)
            assert set(values.values()) == {n - 3}, n

    def test_isolated_triangle_is_zero(self, triangle):
        values = nucleus_decomposition_34(triangle)
        assert values[(0, 1, 2)] == 0

    def test_k4_plus_pendant_triangle(self):
        # K4 (nucleus 1 per triangle) plus a triangle hanging off it.
        edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        edges += [(3, 4), (3, 5), (4, 5)]
        g = CSRGraph.from_edges(6, edges)
        values = nucleus_decomposition_34(g)
        assert values[(3, 4, 5)] == 0  # not in any K4
        assert values[(0, 1, 2)] == 1  # K4's triangles support one K4

    def test_two_overlapping_k5s(self):
        edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        edges += [(u, v) for u in range(3, 8) for v in range(u + 1, 8)]
        g = CSRGraph.from_edges(8, edges)
        values = nucleus_decomposition_34(g)
        # Triangles fully inside either K5 get at least the K5 value (2).
        assert values[(0, 1, 2)] == 2
        assert values[(5, 6, 7)] == 2

    def test_hierarchy_bound_vs_truss(self):
        """theta_{3,4}(T) <= theta_{2,3}(e) - 1 for every edge e of T.

        Each K4 through a triangle T gives each edge of T a distinct
        extra triangle, so the K4-support peel can never outlast the
        triangle-support peel shifted by one level.
        """
        g = erdos_renyi(50, 10.0, seed=2)
        nucleus = nucleus_decomposition_34(g)
        edges, trussness = truss_decomposition(g)
        truss_of = {
            (int(u), int(v)): int(t) - 2  # theta_{2,3} = trussness - 2
            for (u, v), t in zip(edges, trussness)
        }
        for (u, v, w), value in nucleus.items():
            for e in ((u, v), (u, w), (v, w)):
                assert value <= truss_of[e], ((u, v, w), e)

    def test_max_nucleus(self):
        assert max_nucleus_34(complete_graph(6)) == 3
        assert max_nucleus_34(grid_2d(4, 4)) == 0
        assert max_nucleus_34(CSRGraph.from_edges(3, [(0, 1)])) == 0

    def test_monotone_under_densification(self):
        base = erdos_renyi(30, 6.0, seed=3)
        dense = complete_graph(30)
        assert max_nucleus_34(base) <= max_nucleus_34(dense)
