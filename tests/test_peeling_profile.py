"""Tests for the peeling-wave introspection (Fig. 3 machinery)."""

import numpy as np
import pytest

from repro.analysis.peeling import peeling_profile, render_wave_grid
from repro.core.verify import reference_coreness
from repro.generators import grid_2d, path_graph, star_graph


class TestProfile:
    def test_round_of_equals_coreness(self):
        g = grid_2d(8, 8)
        profile = peeling_profile(g)
        assert np.array_equal(profile.round_of, reference_coreness(g))

    def test_waves_cover_all_vertices(self):
        g = grid_2d(6, 9)
        profile = peeling_profile(g)
        assert profile.wave.min() >= 1
        assert sum(profile.frontier_sizes) == g.n

    def test_grid_wave_symmetry(self):
        """Opposite corners fall in the same wave."""
        rows, cols = 7, 11
        profile = peeling_profile(grid_2d(rows, cols))
        waves = profile.wave.reshape(rows, cols)
        assert waves[0, 0] == waves[-1, -1] == waves[0, -1] == waves[-1, 0]

    def test_vgc_reduces_waves(self):
        g = grid_2d(12, 12)
        plain = peeling_profile(g, vgc=False)
        vgc = peeling_profile(g, vgc=True)
        assert vgc.subrounds < plain.subrounds

    def test_path_waves_count(self):
        profile = peeling_profile(path_graph(21))
        # Two endpoints per wave -> ceil((n-1)/2) waves at k=1 plus the
        # k=0-free rounds; the middle vertex falls last.
        assert profile.wave[10] == profile.wave.max()

    def test_star_two_waves(self):
        profile = peeling_profile(star_graph(9))
        assert profile.subrounds == 2
        assert profile.waves_in_round(1) == 2
        assert profile.waves_in_round(5) == 0


class TestRender:
    def test_render_shape(self):
        rows, cols = 5, 7
        profile = peeling_profile(grid_2d(rows, cols))
        text = render_wave_grid(profile, rows, cols)
        lines = text.splitlines()
        assert len(lines) == rows
        assert all(len(line) == cols for line in lines)

    def test_render_dimension_check(self):
        profile = peeling_profile(grid_2d(4, 4))
        with pytest.raises(ValueError):
            render_wave_grid(profile, 5, 5)


class TestConsistencyWithOnion:
    def test_waves_match_onion_layers(self):
        """The plain peel's wave index equals the onion layer."""
        from repro.core.applications import onion_layers
        from repro.generators import erdos_renyi

        for graph in (grid_2d(9, 9), erdos_renyi(150, 5.0, seed=3)):
            profile = peeling_profile(graph, vgc=False)
            layers = onion_layers(graph)
            assert np.array_equal(profile.wave, layers)
