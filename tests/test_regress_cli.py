"""The ``python -m repro.regress`` CLI: run / bless / diff / oracle / list."""

from __future__ import annotations

import json

import pytest

from repro.regress.cli import main
from repro.runtime.cost_model import CostModelOverrides
from repro.runtime.metrics import METRICS_SCHEMA_VERSION

#: A narrow filter keeping CLI runs to a couple of matrix cases.
FILTER = ["-k", "julienne/grid-24"]


def _bless(tmp_path, extra=()):
    return main(
        ["--goldens-dir", str(tmp_path), "bless", *FILTER, *extra]
    )


class TestRunBlessDiff:
    def test_unblessed_run_fails(self, tmp_path, capsys):
        code = main(["--goldens-dir", str(tmp_path), "run", *FILTER])
        assert code == 1
        assert "UNBLESSED" in capsys.readouterr().out

    def test_bless_then_run_passes(self, tmp_path, capsys):
        assert _bless(tmp_path) == 0
        out = capsys.readouterr().out
        assert "blessed" in out and "julienne.json" in out
        assert main(["--goldens-dir", str(tmp_path), "run", *FILTER]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_golden_file_shape(self, tmp_path):
        _bless(tmp_path)
        payload = json.loads((tmp_path / "julienne.json").read_text())
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        assert payload["engine"] == "julienne"
        entry = payload["entries"]["grid-24/default"]
        assert set(entry) == {"graph", "coreness", "metrics"}
        assert entry["metrics"]["time_p1"] > 0

    def test_perturbation_fails_run_and_diff(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.regress import matrix as matrix_mod

        _bless(tmp_path)
        capsys.readouterr()
        monkeypatch.setitem(
            matrix_mod.COST_MODELS,
            "default",
            CostModelOverrides().with_fields(omega=12_000.0),
        )
        assert main(["--goldens-dir", str(tmp_path), "run", *FILTER]) == 1
        out = capsys.readouterr().out
        assert "DRIFT julienne/grid-24/default" in out
        assert "metrics.burdened_span" in out and "->" in out
        assert (
            main(["--goldens-dir", str(tmp_path), "diff", *FILTER]) == 1
        )

    def test_diff_json_format(self, tmp_path, capsys):
        _bless(tmp_path)
        capsys.readouterr()
        code = main(
            [
                "--goldens-dir", str(tmp_path),
                "diff", *FILTER, "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True

    def test_partial_bless_merges(self, tmp_path, capsys):
        _bless(tmp_path)
        assert (
            main(
                [
                    "--goldens-dir", str(tmp_path),
                    "bless", "-k", "julienne/hcns-64",
                ]
            )
            == 0
        )
        payload = json.loads((tmp_path / "julienne.json").read_text())
        assert "grid-24/default" in payload["entries"]
        assert "hcns-64/default" in payload["entries"]

    def test_full_run_against_committed_goldens(self, capsys):
        """CI's regress gate, exercised in-process."""
        assert main(["run"]) == 0
        assert capsys.readouterr().out.startswith("OK:")


class TestOracleAndList:
    def test_oracle_clean(self, capsys):
        code = main(["oracle", "--graphs", "GRID,CUBE", "--no-minimize"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_oracle_unknown_graph(self):
        with pytest.raises(KeyError):
            main(["oracle", "--graphs", "NOPE"])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ours/er-300/default" in out
        assert "cases" in out
