"""Tests for the greedy-scheduling validator of the W/P + S time model."""

import numpy as np
import pytest

from repro.core.framework import FrameworkConfig, decompose
from repro.core.parallel_kcore import ParallelKCore
from repro.core.peel_online import OnlinePeel
from repro.generators import erdos_renyi, grid_2d
from repro.runtime.list_schedule import (
    graham_bound,
    list_schedule_makespan,
    scheduled_time_on,
)
from repro.runtime.simulator import SimRuntime


class TestListSchedule:
    def test_single_worker_is_total_work(self):
        costs = np.array([3.0, 1.0, 4.0])
        assert list_schedule_makespan(costs, 1) == 8.0

    def test_many_workers_is_max_task(self):
        costs = np.array([3.0, 1.0, 4.0])
        assert list_schedule_makespan(costs, 10) == 4.0

    def test_empty(self):
        assert list_schedule_makespan(np.array([]), 4) == 0.0

    def test_graham_guarantee(self, rng):
        for _ in range(30):
            costs = rng.random(int(rng.integers(1, 200))) * 10
            workers = int(rng.integers(1, 16))
            makespan = list_schedule_makespan(costs, workers)
            lower = max(costs.sum() / workers, costs.max())
            assert lower - 1e-9 <= makespan <= graham_bound(
                costs, workers
            ) + 1e-9

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            list_schedule_makespan(np.array([1.0]), 0)


class TestScheduledTime:
    def _metrics_with_tasks(self, graph):
        runtime = SimRuntime(record_task_costs=True)
        import numpy as np

        from repro.core.state import PeelState
        from repro.structures.single_bucket import SingleBucket

        dtilde = graph.degrees.astype(np.int64).copy()
        peeled = np.zeros(graph.n, dtype=bool)
        coreness = np.zeros(graph.n, dtype=np.int64)
        buckets = SingleBucket()
        buckets.build(graph, dtilde, peeled, runtime)
        peel = OnlinePeel()
        state = PeelState(
            graph=graph, dtilde=dtilde, peeled=peeled,
            coreness=coreness, runtime=runtime, buckets=buckets,
        )
        while True:
            step = buckets.next_round()
            if step is None:
                break
            k, frontier = step
            while frontier.size:
                coreness[frontier] = k
                peeled[frontier] = True
                frontier = peel.subround(state, frontier, k)
        return runtime.metrics

    def test_scheduled_close_to_modeled(self):
        graph = erdos_renyi(400, 8.0, seed=7)
        metrics = self._metrics_with_tasks(graph)
        modeled = metrics.time_on(96)
        scheduled = scheduled_time_on(metrics, 96)
        # Greedy scheduling can only beat the per-step bound by at most
        # the max-task slack; the two must agree within a small factor.
        assert 0.5 * modeled <= scheduled <= 1.5 * modeled

    def test_one_thread_equals_work(self):
        graph = grid_2d(10, 10)
        metrics = self._metrics_with_tasks(graph)
        assert scheduled_time_on(metrics, 1) == metrics.work

    def test_fallback_without_task_costs(self):
        result = ParallelKCore.plain().decompose(grid_2d(10, 10))
        modeled = result.metrics.time_on(96)
        scheduled = scheduled_time_on(result.metrics, 96)
        assert scheduled == pytest.approx(modeled)
