"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.core.verify import reference_coreness
from repro.generators import (
    barabasi_albert,
    clique_chain,
    complete_graph,
    cube_3d,
    cycle_graph,
    delaunay_mesh,
    empty_graph,
    erdos_renyi,
    expected_hcns_coreness,
    gaussian_mixture_points,
    grid_2d,
    hcns,
    knn_from_points,
    knn_graph,
    path_graph,
    power_law_with_hub,
    random_bipartite,
    rmat,
    road_like,
    star_graph,
    wavefront_mesh,
)


class TestLattices:
    def test_grid_shape(self):
        g = grid_2d(5, 7)
        assert g.n == 35
        assert g.num_edges == 5 * 6 + 4 * 7  # horizontal + vertical

    def test_grid_coreness_is_two(self):
        assert reference_coreness(grid_2d(8, 8)).max() == 2

    def test_grid_corner_degree(self):
        g = grid_2d(4, 4)
        assert g.degree(0) == 2  # corner
        assert g.degree(5) == 4  # interior

    def test_cube_shape(self):
        g = cube_3d(3, 4, 5)
        assert g.n == 60

    def test_cube_coreness_is_three(self):
        assert reference_coreness(cube_3d(5, 5, 5)).max() == 3

    def test_degenerate_dimensions_rejected(self):
        with pytest.raises(ValueError):
            grid_2d(0, 5)
        with pytest.raises(ValueError):
            cube_3d(2, 0, 2)

    def test_one_by_one_grid(self):
        g = grid_2d(1, 1)
        assert g.n == 1
        assert g.m == 0


class TestPowerLaw:
    def test_ba_min_degree(self):
        g = barabasi_albert(300, 5, seed=1)
        # Every non-seed vertex attaches to 5 targets.
        assert g.degrees.min() >= 5

    def test_ba_deterministic(self):
        a = barabasi_albert(200, 4, seed=9)
        b = barabasi_albert(200, 4, seed=9)
        assert a == b

    def test_ba_different_seeds_differ(self):
        a = barabasi_albert(200, 4, seed=1)
        b = barabasi_albert(200, 4, seed=2)
        assert a != b

    def test_ba_heavy_tail(self):
        g = barabasi_albert(2000, 5, seed=2)
        assert g.max_degree > 5 * np.median(g.degrees)

    def test_ba_parameter_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert(4, 5)

    def test_rmat_size(self):
        g = rmat(8, 8, seed=3)
        assert g.n == 256
        assert 0 < g.num_edges <= 8 * 256

    def test_rmat_skew(self):
        g = rmat(10, 16, seed=4)
        assert g.max_degree > 10 * g.average_degree

    def test_rmat_validation(self):
        with pytest.raises(ValueError):
            rmat(0)
        with pytest.raises(ValueError):
            rmat(5, a=0.5, b=0.3, c=0.3)

    def test_hub_graph_has_hubs(self):
        g = power_law_with_hub(
            800, 3, hub_count=2, hub_degree=300, seed=5
        )
        assert g.max_degree >= 250


class TestHCNS:
    def test_sizes(self):
        g = hcns(20)
        assert g.n == 40  # clique 21 + chain 19

    def test_ground_truth_coreness(self):
        for kmax in (4, 10, 30):
            g = hcns(kmax)
            assert np.array_equal(
                reference_coreness(g), expected_hcns_coreness(kmax)
            )

    def test_one_vertex_per_chain_coreness(self):
        kappa = reference_coreness(hcns(16))
        counts = np.bincount(kappa)
        for i in range(1, 16):
            assert counts[i] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            hcns(1)

    def test_wide_chain_sizes(self):
        g = hcns(20, width=3)
        assert g.n == 21 + 19 * 3  # clique 21 + three witnesses per level

    def test_wide_chain_ground_truth(self):
        for kmax, width in ((6, 2), (12, 3), (30, 2)):
            g = hcns(kmax, width=width)
            assert np.array_equal(
                reference_coreness(g),
                expected_hcns_coreness(kmax, width=width),
            )

    def test_wide_chain_witnesses_per_level(self):
        kappa = reference_coreness(hcns(16, width=4))
        counts = np.bincount(kappa)
        assert np.all(counts[1:16] == 4)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            hcns(8, width=0)


class TestKNN:
    def test_out_degree(self):
        g = knn_graph(200, 4, seed=6)
        # Symmetrized k-NN: every vertex has degree >= k.
        assert g.degrees.min() >= 4

    def test_points_shape(self):
        pts = gaussian_mixture_points(100, dim=5, seed=1)
        assert pts.shape == (100, 5)

    def test_from_points_deterministic(self):
        pts = gaussian_mixture_points(150, seed=2)
        assert knn_from_points(pts, 3) == knn_from_points(pts, 3)

    def test_knn_small_coreness(self):
        g = knn_graph(500, 3, seed=7)
        assert reference_coreness(g).max() <= 12  # small, near k

    def test_validation(self):
        pts = gaussian_mixture_points(10, seed=0)
        with pytest.raises(ValueError):
            knn_from_points(pts, 0)
        with pytest.raises(ValueError):
            knn_from_points(pts, 10)
        with pytest.raises(ValueError):
            gaussian_mixture_points(0)


class TestMeshes:
    def test_delaunay_planarity_bound(self):
        g = delaunay_mesh(400, seed=8)
        # Planar: m <= 3n - 6 edges.
        assert g.num_edges <= 3 * g.n - 6

    def test_delaunay_min_points(self):
        with pytest.raises(ValueError):
            delaunay_mesh(3)

    def test_wavefront_mesh_coreness(self):
        assert reference_coreness(wavefront_mesh(10, 10)).max() == 3

    def test_wavefront_validation(self):
        with pytest.raises(ValueError):
            wavefront_mesh(1, 5)


class TestRoad:
    def test_low_degrees(self):
        g = road_like(2000, seed=9)
        assert g.max_degree <= 8
        assert g.average_degree < 6

    def test_small_coreness(self):
        assert reference_coreness(road_like(2000, seed=9)).max() <= 3

    def test_size_near_requested(self):
        g = road_like(5000, seed=10)
        assert 0.5 * 5000 <= g.n <= 1.5 * 5000

    def test_validation(self):
        with pytest.raises(ValueError):
            road_like(4)


class TestElementary:
    def test_complete_coreness(self):
        assert reference_coreness(complete_graph(10)).max() == 9

    def test_star_coreness(self):
        kappa = reference_coreness(star_graph(20))
        assert np.all(kappa == 1)

    def test_cycle_coreness(self):
        assert np.all(reference_coreness(cycle_graph(15)) == 2)

    def test_path_coreness(self):
        assert np.all(reference_coreness(path_graph(15)) == 1)

    def test_empty(self):
        assert np.all(reference_coreness(empty_graph(5)) == 0)

    def test_clique_chain_coreness(self):
        kappa = reference_coreness(clique_chain(3, 6))
        assert np.all(kappa == 5)

    def test_er_expected_size(self):
        g = erdos_renyi(1000, 8.0, seed=11)
        assert 0.8 * 4000 <= g.num_edges <= 4000

    def test_bipartite_structure(self):
        g = random_bipartite(50, 70, 4.0, seed=12)
        assert g.n == 120
        # No edge inside the left side.
        for v in range(50):
            assert all(u >= 50 for u in g.neighbors(v))

    def test_validations(self):
        with pytest.raises(ValueError):
            erdos_renyi(-1, 2.0)
        with pytest.raises(ValueError):
            erdos_renyi(10, -2.0)
        with pytest.raises(ValueError):
            star_graph(1)
        with pytest.raises(ValueError):
            cycle_graph(2)
        with pytest.raises(ValueError):
            path_graph(1)
        with pytest.raises(ValueError):
            clique_chain(0, 5)
        with pytest.raises(ValueError):
            random_bipartite(0, 5, 2.0)


class TestSmallWorld:
    def test_lattice_without_rewiring(self):
        from repro.generators import watts_strogatz

        g = watts_strogatz(30, 4, 0.0)
        assert np.all(g.degrees == 4)
        assert reference_coreness(g).max() == 4  # ring lattice k-core

    def test_rewiring_changes_structure(self):
        from repro.generators import watts_strogatz

        lattice = watts_strogatz(200, 6, 0.0, seed=1)
        rewired = watts_strogatz(200, 6, 0.5, seed=1)
        assert lattice != rewired
        # Edge count is preserved up to rewiring collisions.
        assert rewired.num_edges <= lattice.num_edges

    def test_deterministic(self):
        from repro.generators import watts_strogatz

        assert watts_strogatz(100, 4, 0.3, seed=2) == watts_strogatz(
            100, 4, 0.3, seed=2
        )

    def test_validation(self):
        from repro.generators import watts_strogatz

        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1)  # k >= n
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5)  # bad p
