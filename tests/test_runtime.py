"""Tests for the simulated runtime: cost model, metrics, simulator."""

import numpy as np
import pytest

from repro.runtime.atomics import (
    batch_decrement,
    batch_increment_clamped,
    contention_of,
)
from repro.runtime.cost_model import (
    DEFAULT_COST_MODEL,
    CostModel,
    CostModelOverrides,
    nanos_to_millis,
    nanos_to_seconds,
)
from repro.runtime.metrics import RunMetrics
from repro.runtime.scheduler import (
    burdened_span_speedup,
    self_relative_speedup,
    speedup_curve,
)
from repro.runtime.simulator import SimRuntime


class TestCostModel:
    def test_effective_cores_linear_up_to_physical(self):
        m = CostModel()
        assert m.effective_cores(1) == 1
        assert m.effective_cores(96) == 96

    def test_effective_cores_hyperthreads_sublinear(self):
        m = CostModel()
        eff = m.effective_cores(192)
        assert 96 < eff < 192

    def test_effective_cores_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CostModel().effective_cores(0)

    def test_overrides(self):
        derived = CostModelOverrides().with_fields(omega=1.0, edge_op=7.0)
        assert derived.omega == 1.0
        assert derived.edge_op == 7.0
        assert derived.atomic_op == DEFAULT_COST_MODEL.atomic_op

    def test_overrides_unknown_field(self):
        with pytest.raises(KeyError):
            CostModelOverrides().with_fields(bogus=1.0)

    def test_unit_conversions(self):
        assert nanos_to_millis(2_000_000) == pytest.approx(2.0)
        assert nanos_to_seconds(3e9) == pytest.approx(3.0)


class TestRunMetrics:
    def test_parallel_accumulation(self):
        m = RunMetrics()
        m.record_parallel(work=100.0, span=10.0, barriers=2)
        m.record_parallel(work=50.0, span=5.0, barriers=1)
        assert m.work == 150.0
        assert m.span == 15.0
        assert m.barriers == 3

    def test_sequential_span_equals_work(self):
        m = RunMetrics()
        m.record_sequential(42.0)
        assert m.span == 42.0
        assert m.barriers == 0

    def test_burdened_span(self):
        m = RunMetrics()
        m.record_parallel(work=10.0, span=1.0, barriers=3)
        expected = 1.0 + 3 * DEFAULT_COST_MODEL.omega
        assert m.burdened_span == expected

    def test_time_on_one_thread_is_work(self):
        m = RunMetrics()
        m.record_parallel(work=960.0, span=1.0, barriers=5)
        assert m.time_on(1) == 960.0

    def test_time_on_includes_barriers(self):
        m = RunMetrics()
        m.record_parallel(work=9600.0, span=1.0, barriers=1)
        t96 = m.time_on(96)
        assert t96 == pytest.approx(100.0 + DEFAULT_COST_MODEL.omega_time)

    def test_time_on_span_bound(self):
        m = RunMetrics()
        m.record_parallel(work=96.0, span=50.0, barriers=0)
        assert m.time_on(96) == pytest.approx(50.0)

    def test_merge(self):
        a, b = RunMetrics(), RunMetrics()
        a.record_parallel(10.0, 1.0, 1)
        a.rounds = 2
        b.record_parallel(20.0, 2.0, 1)
        b.rounds = 3
        b.max_contention = 9
        a.merge(b)
        assert a.work == 30.0
        assert a.rounds == 5
        assert a.max_contention == 9
        assert len(a.steps) == 2

    def test_summary_keys(self):
        m = RunMetrics()
        summary = m.summary()
        for key in ("work", "span", "burdened_span", "subrounds"):
            assert key in summary

    def test_observe_contention(self):
        m = RunMetrics()
        m.observe_contention(5, count=10)
        m.observe_contention(3, count=2)
        assert m.max_contention == 5
        assert m.atomics == 12


class TestSimRuntime:
    # These tests exercise the raw charging API with hand-picked literal
    # costs and no tags on purpose: the assertions below pin down the
    # exact work/span arithmetic, independent of any CostModel field.

    def test_parallel_for_scalar(self):
        rt = SimRuntime()
        rt.parallel_for(2.0, count=10)  # lint: disable=R002,R005
        assert rt.metrics.work == 20.0
        assert rt.metrics.span == 2.0

    def test_parallel_for_array(self):
        rt = SimRuntime()
        rt.parallel_for(np.array([1.0, 5.0, 2.0]))  # lint: disable=R002,R005
        assert rt.metrics.work == 8.0
        assert rt.metrics.span == 5.0

    def test_parallel_for_scalar_requires_count(self):
        with pytest.raises(ValueError):
            SimRuntime().parallel_for(2.0)  # lint: disable=R002,R005

    def test_parallel_update_contention(self):
        rt = SimRuntime()
        counts = np.array([3, 1, 1])
        rt.parallel_update(0.0, counts, count=5)  # lint: disable=R002
        model = rt.model
        assert rt.metrics.work == 5 * model.atomic_op
        assert rt.metrics.span == 3 * model.contended_atomic_op
        assert rt.metrics.max_contention == 3
        assert rt.metrics.atomics == 5

    def test_sequential_charge(self):
        rt = SimRuntime()
        rt.sequential(7.0)  # lint: disable=R002,R005
        assert rt.metrics.work == 7.0
        assert rt.metrics.barriers == 0

    def test_sequential_zero_is_noop(self):
        rt = SimRuntime()
        rt.sequential(0.0)  # lint: disable=R002
        assert len(rt.metrics.steps) == 0

    def test_imbalanced_step(self):
        rt = SimRuntime()
        rt.imbalanced_step([10.0, 90.0, 20.0])  # lint: disable=R002,R005
        assert rt.metrics.work == 120.0
        assert rt.metrics.span == 90.0

    def test_barrier_only(self):
        rt = SimRuntime()
        rt.barrier_only(3)  # lint: disable=R002
        assert rt.metrics.barriers == 3
        assert rt.metrics.work == 0.0

    def test_round_counters(self):
        rt = SimRuntime()
        rt.begin_round()
        rt.begin_subround(10)
        rt.begin_subround(25)
        assert rt.metrics.rounds == 1
        assert rt.metrics.subrounds == 2
        assert rt.metrics.peak_frontier == 25


class TestAtomics:
    def test_batch_decrement(self):
        values = np.array([5, 3, 2, 9], dtype=np.int64)
        targets = np.array([0, 0, 1, 2], dtype=np.int64)
        out = batch_decrement(values, targets, k=2)
        assert list(values) == [3, 2, 1, 9]
        # vertex 1 crossed (3 -> 2 <= 2); vertex 2 was already at k.
        assert list(out.crossed) == [1]
        assert out.counts.max() == 2

    def test_batch_decrement_empty(self):
        values = np.array([5], dtype=np.int64)
        out = batch_decrement(values, np.array([], dtype=np.int64), k=0)
        assert out.crossed.size == 0
        assert values[0] == 5

    def test_crossing_fires_once_even_with_overshoot(self):
        values = np.array([4], dtype=np.int64)
        targets = np.zeros(4, dtype=np.int64)  # four decrements at once
        out = batch_decrement(values, targets, k=3)
        assert list(out.crossed) == [0]
        assert values[0] == 0

    def test_batch_increment_clamped(self):
        counters = np.array([8, 0], dtype=np.int64)
        targets = np.array([0, 0, 1], dtype=np.int64)
        counts, reached = batch_increment_clamped(counters, targets, limit=10)
        assert list(counters) == [10, 1]
        assert list(reached) == [0]
        assert counts.max() == 2

    def test_increment_no_double_fire(self):
        counters = np.array([10], dtype=np.int64)  # already at limit
        _, reached = batch_increment_clamped(
            counters, np.array([0]), limit=10
        )
        assert reached.size == 0

    def test_contention_of(self):
        counts = contention_of(np.array([7, 7, 7, 3]))
        assert sorted(counts.tolist()) == [1, 3]
        assert contention_of(np.array([], dtype=np.int64)).size == 0


class TestScheduler:
    def _metrics(self) -> RunMetrics:
        m = RunMetrics()
        for _ in range(10):
            m.record_parallel(work=10_000.0, span=5.0, barriers=1)
        return m

    def test_speedup_curve_monotone(self):
        curve = speedup_curve(self._metrics())
        speedups = [p.speedup for p in curve]
        assert speedups == sorted(speedups)
        assert curve[0].threads == 1
        assert curve[0].speedup == pytest.approx(1.0)

    def test_self_relative_speedup_above_one(self):
        assert self_relative_speedup(self._metrics(), threads=96) > 1.0

    def test_burdened_span_speedup(self):
        fast, slow = RunMetrics(), RunMetrics()
        fast.record_parallel(10.0, 1.0, 1)
        slow.record_parallel(10.0, 1.0, 10)
        assert burdened_span_speedup(slow, fast) > 1.0
