"""Tests for the decomposition verifier itself."""

import numpy as np
import pytest

from repro.core.verify import (
    assert_valid_decomposition,
    check_core_membership,
    check_coreness,
    reference_coreness,
)
from repro.generators import complete_graph, grid_2d, star_graph


class TestCheckCoreness:
    def test_accepts_correct(self, small_er):
        assert check_coreness(small_er, reference_coreness(small_er))

    def test_rejects_perturbed(self, small_er):
        kappa = reference_coreness(small_er).copy()
        kappa[0] += 1
        assert not check_coreness(small_er, kappa)

    def test_rejects_wrong_shape(self, triangle):
        assert not check_coreness(triangle, np.zeros(5, dtype=np.int64))

    def test_rejects_all_zero_on_nonzero_graph(self, triangle):
        assert not check_coreness(triangle, np.zeros(3, dtype=np.int64))

    def test_assert_helper_raises_with_context(self, triangle):
        with pytest.raises(AssertionError, match="myalgo"):
            assert_valid_decomposition(
                triangle, np.zeros(3, dtype=np.int64), algorithm="myalgo"
            )

    def test_assert_helper_passes(self, triangle):
        assert_valid_decomposition(
            triangle, reference_coreness(triangle)
        )


class TestMembershipCheck:
    def test_accepts_correct(self, medium_er):
        assert check_core_membership(
            medium_er, reference_coreness(medium_er)
        )

    def test_rejects_inflated(self, small_er):
        kappa = reference_coreness(small_er).copy()
        kappa[:] = kappa.max() + 3  # everyone claims an impossible core
        assert not check_core_membership(small_er, kappa)

    def test_is_necessary_not_sufficient(self):
        """All-zeros passes membership (feasible) but fails exactness."""
        g = complete_graph(5)
        zeros = np.zeros(5, dtype=np.int64)
        assert check_core_membership(g, zeros)
        assert not check_coreness(g, zeros)

    def test_wrong_shape(self, triangle):
        assert not check_core_membership(triangle, np.zeros(7))

    def test_empty_graph(self):
        from repro.generators import empty_graph

        g = empty_graph(0)
        assert check_core_membership(g, np.zeros(0, dtype=np.int64))


class TestReferenceKnownValues:
    def test_clique(self):
        assert np.all(reference_coreness(complete_graph(8)) == 7)

    def test_star(self):
        assert np.all(reference_coreness(star_graph(9)) == 1)

    def test_grid_interior_and_corners_all_two(self):
        kappa = reference_coreness(grid_2d(7, 7))
        assert np.all(kappa == 2)

    def test_disconnected_components_independent(self):
        from repro.graphs.csr import CSRGraph

        # Triangle + isolated edge + isolated vertex.
        g = CSRGraph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (3, 4)]
        )
        kappa = reference_coreness(g)
        assert list(kappa) == [2, 2, 2, 1, 1, 0]
