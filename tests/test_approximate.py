"""Tests for the (1+eps)-approximate decomposition."""

import numpy as np
import pytest

from repro.core.approximate import approximate_coreness, approximation_phases
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    erdos_renyi,
    grid_2d,
    hcns,
    power_law_with_hub,
    star_graph,
)


def assert_approximation(graph, eps):
    exact = reference_coreness(graph)
    result = approximate_coreness(graph, eps=eps)
    est = result.coreness
    # Zero iff isolated-from-core vertices.
    assert np.array_equal(est == 0, exact == 0)
    nonzero = exact > 0
    assert np.all(est[nonzero] >= exact[nonzero])
    assert np.all(est[nonzero] < (1 + eps) * exact[nonzero] + 1e-9)
    return result


class TestGuarantee:
    @pytest.mark.parametrize("eps", [0.1, 0.25, 0.5, 1.0])
    def test_er(self, eps):
        assert_approximation(erdos_renyi(400, 8.0, seed=1), eps)

    @pytest.mark.parametrize("eps", [0.25, 0.5])
    def test_hub_graph(self, eps):
        assert_approximation(
            power_law_with_hub(1000, 4, hub_count=2, hub_degree=300, seed=2),
            eps,
        )

    def test_high_coreness(self):
        assert_approximation(hcns(48), eps=0.5)

    def test_clique_exact_at_any_eps(self):
        # Cliques land exactly on a threshold or just above.
        assert_approximation(complete_graph(30), eps=0.5)

    def test_uniform_low_coreness(self):
        result = assert_approximation(grid_2d(12, 12), eps=0.5)
        assert result.coreness.max() <= 3  # kappa = 2, slack 1.5x

    def test_star(self):
        result = assert_approximation(star_graph(50), eps=0.5)
        assert np.all(result.coreness == 1)


class TestCosts:
    def test_fewer_subrounds_than_exact_on_grid(self):
        """Geometric phases collapse the grid's O(sqrt n) subrounds."""
        from repro.core.framework import FrameworkConfig, decompose

        g = grid_2d(40, 40)
        exact = decompose(
            g, FrameworkConfig(peel="online", buckets="1")
        )
        approx = approximate_coreness(g, eps=0.5)
        assert approx.metrics.subrounds <= exact.metrics.subrounds

    def test_phase_count_logarithmic(self):
        assert approximation_phases(2, 0.5) <= 4
        assert approximation_phases(1000, 0.5) <= 22
        assert approximation_phases(10**6, 0.5) <= 40

    def test_phase_count_grows_as_eps_shrinks(self):
        assert approximation_phases(1000, 0.1) > approximation_phases(
            1000, 1.0
        )


class TestValidation:
    def test_eps_must_be_positive(self, triangle):
        with pytest.raises(ValueError):
            approximate_coreness(triangle, eps=0.0)
        with pytest.raises(ValueError):
            approximation_phases(10, -1.0)

    def test_empty_graph(self):
        from repro.generators import empty_graph

        result = approximate_coreness(empty_graph(5), eps=0.5)
        assert np.all(result.coreness == 0)

    def test_algorithm_label(self, triangle):
        assert "approx" in approximate_coreness(triangle).algorithm
