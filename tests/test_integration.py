"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    CSRGraph,
    ParallelKCore,
    bz_core,
    check_coreness,
    generators,
    kcore,
    max_kcore_subgraph,
)
from repro.analysis import ExperimentCache, PARALLEL_ALGORITHMS
from repro.core.baselines import julienne_kcore, park_kcore, pkc_kcore
from repro.core.verify import reference_coreness


# The in-process suite is deterministic, so results must be reproducible.
class TestSuiteGraphs:
    def test_suite_loads_and_caches(self):
        first = generators.load("AF-S")
        second = generators.load("AF-S")
        assert first is second

    def test_unknown_suite_name(self):
        with pytest.raises(KeyError):
            generators.load("NOPE")

    def test_names_filters(self):
        roads = generators.names(family="road")
        assert set(roads) == {"AF-S", "NA-S", "AS-S", "EU-S"}
        dense = generators.names(dense=True)
        assert "LJ-S" in dense and "AF-S" not in dense

    def test_representative_subset_of_suite(self):
        assert set(generators.REPRESENTATIVE) <= set(generators.SUITE)
        assert set(generators.SAMPLING_TRIGGER) <= set(generators.SUITE)
        assert set(generators.SMALL) <= set(generators.SUITE)

    @pytest.mark.parametrize("name", generators.SMALL)
    def test_small_suite_exact_everywhere(self, name):
        graph = generators.load(name)
        ref = reference_coreness(graph)
        assert check_coreness(graph, ref)
        got = ParallelKCore().coreness(graph)
        assert np.array_equal(got, ref), name

    def test_sampling_trigger_graphs_have_big_hubs(self):
        """Graphs listed as sampling triggers must actually trigger it."""
        from repro.core.framework import FrameworkConfig, decompose

        for name in ("TW-S", "HPL", "HCNS"):
            graph = generators.load(name)
            config = FrameworkConfig(
                peel="online", buckets="1", sampling=True
            )
            result = decompose(graph, config)
            assert result.metrics.sampled_vertices > 0, name


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("name", ("AF-S", "GL5-S", "LJ-S"))
    def test_all_algorithms_agree_on_suite(self, name):
        graph = generators.load(name)
        ref = reference_coreness(graph)
        for runner in (julienne_kcore, park_kcore, pkc_kcore, bz_core):
            got = runner(graph).coreness
            assert np.array_equal(got, ref), runner.__name__

    def test_decomposition_then_subgraph_consistent(self):
        graph = generators.load("LJ-S")
        result = ParallelKCore().decompose(graph)
        for k in (3, 6, 9):
            members = max_kcore_subgraph(graph, k).members
            assert np.array_equal(members, result.coreness >= k), k


class TestPerformanceShapes:
    """The headline performance claims (directional, per DESIGN.md)."""

    def test_ours_beats_sequential_on_sparse(self):
        cache = ExperimentCache()
        for name in ("AF-S", "GL5-S", "GRID"):
            ours = cache.get("ours", name)
            seq = cache.best_sequential_ms(name)
            assert ours.time_ms < seq, name

    def test_julienne_struggles_on_grid(self):
        """The paper's Fig. 2: Julienne is near/below sequential on GRID."""
        cache = ExperimentCache()
        jul = cache.get("julienne", "GRID").time_ms
        ours = cache.get("ours", "GRID").time_ms
        assert jul > 5 * ours

    def test_ours_wins_on_hub_graph(self):
        cache = ExperimentCache()
        ours = cache.get("ours", "TW-S").time_ms
        for baseline in ("park", "pkc"):
            assert cache.get(baseline, "TW-S").time_ms > ours, baseline

    def test_self_speedup_reasonable(self):
        cache = ExperimentCache()
        record = cache.get("ours", "GRID")
        assert record.self_speedup > 5

    def test_work_efficiency_vs_park_on_hcns(self):
        """ParK (no active set) does far more work than ours on HCNS."""
        cache = ExperimentCache()
        ours = cache.get("ours", "HCNS")
        park = cache.get("park", "HCNS")
        assert park.seq_ms > ours.seq_ms * 0  # both defined
        graph = generators.load("HCNS")
        # ParK's extra work: kmax * n scans.
        assert (
            cache.get("park", "HCNS").seq_ms
            >= 1024 * graph.n * 0.25 * 1e-6
        )


class TestPublicAPI:
    def test_kcore_one_liner(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        assert list(kcore(g)) == [2, 2, 2, 1]

    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name
