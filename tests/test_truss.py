"""Tests for the k-truss decomposition extension."""

import numpy as np
import pytest

from repro.core.truss import (
    ktruss_subgraph,
    max_trussness,
    triangle_support,
    truss_decomposition,
)
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.transform import all_edges


class TestTriangleSupport:
    def test_triangle(self, triangle):
        _, support = triangle_support(triangle)
        assert list(support) == [1, 1, 1]

    def test_clique_support(self):
        g = complete_graph(5)
        _, support = triangle_support(g)
        assert np.all(support == 3)  # each edge in n-2 triangles

    def test_triangle_free(self):
        _, support = triangle_support(grid_2d(5, 5))
        assert np.all(support == 0)

    def test_total_counts_triangles_thrice(self):
        g = erdos_renyi(80, 8.0, seed=1)
        _, support = triangle_support(g)
        assert support.sum() % 3 == 0


class TestTrussness:
    def test_clique(self):
        g = complete_graph(6)
        _, trussness = truss_decomposition(g)
        assert np.all(trussness == 6)  # K_n is the n-truss

    def test_triangle_free_graph_all_two(self):
        g = cycle_graph(10)
        _, trussness = truss_decomposition(g)
        assert np.all(trussness == 2)

    def test_clique_plus_tail(self):
        edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        edges += [(4, 5), (5, 6)]
        g = CSRGraph.from_edges(7, edges)
        es, trussness = truss_decomposition(g)
        values = {
            (int(u), int(v)): int(t) for (u, v), t in zip(es, trussness)
        }
        assert values[(4, 5)] == 2
        assert values[(5, 6)] == 2
        assert values[(0, 1)] == 5

    def test_empty(self):
        g = CSRGraph.from_edges(4, [])
        edges, trussness = truss_decomposition(g)
        assert edges.shape[0] == 0
        assert max_trussness(g) == 0

    def test_against_networkx(self):
        networkx = pytest.importorskip("networkx")
        g = erdos_renyi(60, 7.0, seed=3)
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(g.n))
        nx_graph.add_edges_from(map(tuple, all_edges(g)))
        for k in (2, 3, 4, 5):
            ours = ktruss_subgraph(g, k)
            theirs = networkx.k_truss(nx_graph, k)
            ours_edges = {
                (int(u), int(v)) for u, v in all_edges(ours)
            }
            theirs_edges = {
                (min(u, v), max(u, v)) for u, v in theirs.edges()
            }
            assert ours_edges == theirs_edges, k


class TestSubgraph:
    def test_truss_nested(self):
        g = erdos_renyi(80, 10.0, seed=4)
        prev = None
        for k in (2, 3, 4, 5):
            sub = ktruss_subgraph(g, k)
            if prev is not None:
                assert sub.num_edges <= prev
            prev = sub.num_edges

    def test_truss_support_invariant(self):
        g = erdos_renyi(80, 10.0, seed=5)
        k = 4
        sub = ktruss_subgraph(g, k)
        if sub.num_edges:
            _, support = triangle_support(sub)
            assert support.min() >= k - 2

    def test_trussness_at_most_coreness_plus_one(self):
        """Classic bound: truss(e) <= min core(u), core(v)) + 1."""
        from repro.core.verify import reference_coreness

        g = erdos_renyi(80, 9.0, seed=6)
        kappa = reference_coreness(g)
        edges, trussness = truss_decomposition(g)
        for (u, v), t in zip(edges, trussness):
            assert t <= min(kappa[int(u)], kappa[int(v)]) + 1

    def test_k_validation(self, triangle):
        with pytest.raises(ValueError):
            ktruss_subgraph(triangle, 1)
