"""Tests for the k-core applications (coloring, densest subgraph, onion)."""

import numpy as np
import pytest

from repro.core.applications import (
    densest_subgraph_peel,
    greedy_degeneracy_coloring,
    influence_ranking,
    onion_layers,
)
from repro.core.sequential import degeneracy
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
    power_law_with_hub,
    star_graph,
)
from repro.graphs.csr import CSRGraph


def assert_proper(graph, colors):
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    assert np.all(colors[src] != colors[graph.indices])


class TestColoring:
    def test_proper_on_er(self, medium_er):
        colors = greedy_degeneracy_coloring(medium_er)
        assert_proper(medium_er, colors)

    def test_color_bound(self, medium_er):
        colors = greedy_degeneracy_coloring(medium_er)
        assert colors.max() <= degeneracy(medium_er)

    def test_clique_needs_n_colors(self):
        g = complete_graph(7)
        colors = greedy_degeneracy_coloring(g)
        assert_proper(g, colors)
        assert len(set(colors.tolist())) == 7

    def test_bipartite_two_colors(self):
        g = grid_2d(6, 6)  # grids are bipartite
        colors = greedy_degeneracy_coloring(g)
        assert_proper(g, colors)
        assert colors.max() <= 2  # degeneracy 2 -> at most 3, usually 2

    def test_path_two_colors(self):
        colors = greedy_degeneracy_coloring(path_graph(20))
        assert colors.max() <= 1

    def test_empty(self):
        assert greedy_degeneracy_coloring(empty_graph(3)).max() == 0


class TestDensestSubgraph:
    def test_recovers_planted_clique(self):
        # K12 plus a long sparse tail: the clique is the densest part.
        clique_edges = [
            (u, v) for u in range(12) for v in range(u + 1, 12)
        ]
        tail_edges = [(11 + i, 12 + i) for i in range(30)]
        g = CSRGraph.from_edges(42, clique_edges + tail_edges)
        result = densest_subgraph_peel(g)
        assert set(range(12)) <= set(result.vertices.tolist())
        assert result.density >= 11 / 2  # clique density (n-1)/2

    def test_density_at_least_whole_graph(self, medium_er):
        result = densest_subgraph_peel(medium_er)
        assert result.density >= medium_er.num_edges / medium_er.n - 1e-9

    def test_density_at_least_half_degeneracy(self, medium_er):
        # rho* >= degeneracy/2 and the peel is a 2-approximation, so the
        # returned density is at least degeneracy/4; in fact the standard
        # bound gives >= degeneracy/2 directly from the peel prefix.
        result = densest_subgraph_peel(medium_er)
        assert 2 * result.density >= degeneracy(medium_er) / 2

    def test_clique_is_its_own_densest(self):
        g = complete_graph(10)
        result = densest_subgraph_peel(g)
        assert result.vertices.size == 10
        assert result.density == pytest.approx(45 / 10)

    def test_density_value_matches_subgraph(self, medium_er):
        result = densest_subgraph_peel(medium_er)
        sub = medium_er.induced_subgraph(result.vertices)
        assert result.density == pytest.approx(sub.num_edges / sub.n)

    def test_empty_graph(self):
        result = densest_subgraph_peel(empty_graph(0))
        assert result.vertices.size == 0
        assert result.density == 0.0


class TestOnionLayers:
    def test_layers_refine_coreness(self, medium_er):
        layers = onion_layers(medium_er)
        kappa = reference_coreness(medium_er)
        # Peeling order respects coreness: lower coreness never sits in a
        # deeper layer than any higher-coreness vertex... not in general;
        # but within the same coreness, layers vary, and every vertex has
        # a positive layer.
        assert layers.min() >= 1
        # A strictly deeper core implies a no-earlier layer for at least
        # the innermost core: the max-coreness vertices fall last.
        innermost = kappa == kappa.max()
        assert layers[innermost].min() >= layers[~innermost].max() or (
            innermost.all()
        )

    def test_star_two_layers(self):
        layers = onion_layers(star_graph(30))
        assert layers[0] == 2  # hub falls after the leaves
        assert np.all(layers[1:] == 1)

    def test_cycle_single_layer(self):
        layers = onion_layers(cycle_graph(12))
        assert np.all(layers == 1)

    def test_path_peels_from_both_ends(self):
        layers = onion_layers(path_graph(9))
        assert layers[0] == 1 and layers[8] == 1
        assert layers[4] == layers.max()  # middle falls last

    def test_grid_diagonal_waves(self):
        layers = onion_layers(grid_2d(7, 7))
        assert layers.max() > 1  # corners first, interior later
        assert layers[0] == 1


class TestInfluenceRanking:
    def test_ranks_by_coreness_then_degree(self):
        g = power_law_with_hub(
            600, 3, hub_count=1, hub_degree=200, seed=4,
            hub_targets="fresh",
        )
        kappa = reference_coreness(g)
        ranked = influence_ranking(g, kappa)
        ks = kappa[ranked]
        assert np.all(np.diff(ks) <= 0)  # non-increasing coreness
        # Within equal coreness, degree non-increasing.
        degrees = g.degrees[ranked]
        for i in range(len(ranked) - 1):
            if ks[i] == ks[i + 1]:
                assert degrees[i] >= degrees[i + 1]

    def test_top_parameter(self, small_er):
        kappa = reference_coreness(small_er)
        assert influence_ranking(small_er, kappa, top=5).size == 5

    def test_shape_validation(self, triangle):
        with pytest.raises(ValueError):
            influence_ranking(triangle, np.zeros(5))
