"""The repro.bench subsystem: disk cache, matrix runner, CLI.

Everything runs on tiny suite graphs with a per-test cache directory, so
the tests exercise the real cold -> warm lifecycle (including the
process pool) in seconds without touching the repository's cache.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import DISK_CACHE_ENV, ExperimentCache
from repro.bench.cache import CACHE_DIR_ENV, DiskCache, cache_key
from repro.bench.cli import main
from repro.bench.runner import (
    BenchCell,
    compare_kernels,
    compare_kernels_all,
    default_matrix,
    execute,
    run_cell,
)
from repro.regress.matrix import ENGINES


class TestCacheKey:
    def test_insensitive_to_field_order(self):
        assert cache_key({"a": 1, "b": [2, 3]}) == cache_key(
            {"b": [2, 3], "a": 1}
        )

    def test_sensitive_to_values(self):
        assert cache_key({"a": 1}) != cache_key({"a": 2})

    def test_cell_key_pins_engine_graph_size_and_kernels(self):
        base = BenchCell("ours", "GL2-S", size="tiny")
        assert base.key() != BenchCell("bz", "GL2-S", size="tiny").key()
        assert base.key() != BenchCell("ours", "AF-S", size="tiny").key()
        assert base.key() != BenchCell("ours", "GL2-S", size="full").key()
        assert base.key() != BenchCell("ours", "GL2-S", size="large").key()
        assert (
            base.key()
            != BenchCell(
                "ours", "GL2-S", size="tiny", kernels="reference"
            ).key()
        )


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"x": 1})
        assert cache.get("deadbeef") == {"x": 1}
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", {"x": 1})
        cache.path("k").write_text("{not json")
        assert cache.get("k") is None

    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envdir"))
        cache = DiskCache()
        cache.put("k", {"x": 2})
        assert (tmp_path / "envdir" / "k.json").exists()


class TestMatrix:
    def test_default_matrix_covers_all_engines_and_graphs(self):
        from repro.generators.suite import SUITE

        cells = default_matrix()
        assert len(cells) == len(ENGINES) * len(SUITE)

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError, match="unknown engine"):
            default_matrix(engines=["warp"])

    def test_unknown_graph_rejected(self):
        with pytest.raises(KeyError, match="unknown suite graph"):
            default_matrix(graphs=["nope"])

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="unknown suite size"):
            default_matrix(size="huge")

    def test_large_size_accepted(self):
        cells = default_matrix(
            engines=["ours"], graphs=["GL2-S"], size="large"
        )
        assert cells[0].size == "large"
        assert "/large/" in cells[0].label


class TestRunner:
    CELLS = [
        BenchCell(engine, graph, size="tiny")
        for engine in ("bz", "ours")
        for graph in ("GL2-S", "AF-S")
    ]

    def test_cold_then_warm(self, tmp_path):
        cache = DiskCache(tmp_path)
        cold = execute(self.CELLS, jobs=1, cache=cache)
        assert cold["summary"]["misses"] == len(self.CELLS)
        assert cold["summary"]["hits"] == 0
        assert cold["summary"]["measured_wall_s"] > 0
        assert cold["summary"]["cached_wall_s"] == 0

        warm = execute(self.CELLS, jobs=1, cache=cache)
        assert warm["summary"]["hits"] == len(self.CELLS)
        assert warm["summary"]["misses"] == 0
        # A warm run still reports full timings: every cell carries the
        # wall-clock of the run that produced its payload, and the
        # per-engine totals aggregate hits and misses alike.
        assert warm["summary"]["measured_wall_s"] == 0
        assert warm["summary"]["cached_wall_s"] > 0
        assert warm["summary"]["by_engine_wall_s"].keys() == {"bz", "ours"}
        assert all(
            wall > 0
            for wall in warm["summary"]["by_engine_wall_s"].values()
        )
        # The warm payloads are the cold ones, byte for byte.
        for before, after in zip(cold["cells"], warm["cells"]):
            assert before["coreness_sha256"] == after["coreness_sha256"]
            assert before["key"] == after["key"]
            assert after["wall_s"] == before["wall_s"]

    def test_refresh_ignores_cache(self, tmp_path):
        cache = DiskCache(tmp_path)
        execute(self.CELLS[:1], jobs=1, cache=cache)
        again = execute(self.CELLS[:1], jobs=1, cache=cache, refresh=True)
        assert again["summary"]["misses"] == 1

    def test_pool_matches_inline(self, tmp_path):
        inline = execute(self.CELLS, jobs=1, cache=DiskCache(tmp_path / "a"))
        pooled = execute(self.CELLS, jobs=2, cache=DiskCache(tmp_path / "b"))
        fingerprint = lambda rep: [
            (c["engine"], c["graph"], c["coreness_sha256"], c["m"])
            for c in rep["cells"]
        ]
        assert fingerprint(inline) == fingerprint(pooled)

    def test_payload_matches_direct_run(self):
        from repro.generators import suite
        from repro.regress.matrix import coreness_fingerprint
        from repro.runtime.cost_model import DEFAULT_COST_MODEL

        payload = run_cell(BenchCell("julienne", "GL2-S", size="tiny"))
        graph = suite.load("GL2-S", tiny=True)
        result = ENGINES["julienne"](graph, DEFAULT_COST_MODEL)
        assert payload["coreness"] == coreness_fingerprint(result.coreness)
        assert payload["metrics"] == result.metrics.to_stable_dict(
            DEFAULT_COST_MODEL
        )
        assert payload["wall"]["wall_s"] >= 0

    def test_compare_kernels_tiny(self):
        comp = compare_kernels(graphs=["GL2-S"], size="tiny")
        assert comp["engine"] == "ours"
        assert comp["wall_s"]["reference"] > 0
        assert comp["wall_s"]["vectorized"] > 0
        assert comp["fastest"] != "reference"
        assert set(comp["graphs"]) == {"GL2-S"}

    def test_compare_kernels_all_covers_baselines(self):
        report = compare_kernels_all(
            graphs=["GL2-S"],
            size="tiny",
            engines=("pkc", "julienne"),
            modes=("reference", "vectorized"),
        )
        assert set(report["per_engine"]) == {"pkc", "julienne"}
        for engine, comp in report["per_engine"].items():
            assert comp["engine"] == engine
            assert comp["wall_s"]["reference"] > 0
            assert comp["wall_s"]["vectorized"] > 0
            assert set(comp["graphs"]) == {"GL2-S"}


class TestCLI:
    ARGS = [
        "--tiny",
        "--engines",
        "bz,ours",
        "--graphs",
        "GL2-S",
        "--jobs",
        "1",
    ]

    def test_cold_then_warm_all_hits(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        args = self.ARGS + ["--cache-dir", str(tmp_path / "c"), "--output", out]
        assert main(args) == 0
        assert main(args + ["--assert-all-hits"]) == 0
        report = json.loads(open(out).read())
        assert report["summary"]["hits"] == 2
        assert {c["cache"] for c in report["cells"]} == {"hit"}
        printed = capsys.readouterr().out
        assert "2 hits" in printed

    def test_assert_all_hits_fails_cold(self, tmp_path):
        args = self.ARGS + [
            "--cache-dir",
            str(tmp_path / "c"),
            "--output",
            "-",
            "--assert-all-hits",
        ]
        assert main(args) == 1

    def test_assert_wall_budget(self, tmp_path):
        args = self.ARGS + [
            "--cache-dir",
            str(tmp_path / "c"),
            "--output",
            "-",
            "--assert-wall-budget",
            "1e-9",
        ]
        # A cold run measures real wall time, which busts a 1ns budget;
        # the warm rerun measures nothing and passes.
        assert main(args) == 1
        assert main(args) == 0

    def test_tiny_and_large_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["--tiny", "--large"])


class TestExperimentDiskCache:
    def test_records_roundtrip_across_instances(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_TINY", "1")
        monkeypatch.setenv(DISK_CACHE_ENV, "1")
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        first = ExperimentCache()
        record = first.get("bz", "GL2-S")
        assert len(DiskCache(tmp_path)) == 1

        # Tamper with the stored payload: a second cache instance must
        # read the disk record, not recompute.
        disk = DiskCache(tmp_path)
        key = next(disk.root.glob("*.json")).stem
        payload = disk.get(key)
        payload["kmax"] = 999
        disk.put(key, payload)
        second = ExperimentCache()
        assert second.get("bz", "GL2-S").kmax == 999
        assert record.kmax != 999

    def test_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_TINY", "1")
        monkeypatch.delenv(DISK_CACHE_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        ExperimentCache().get("bz", "GL2-S")
        assert len(DiskCache(tmp_path)) == 0
