"""Robustness of the headline conclusions to cost-model perturbations.

The simulated-machine constants (DESIGN.md §3) are estimates; the paper's
qualitative conclusions should not hinge on their exact values.  These
tests re-run the key comparisons under halved/doubled constants and
assert the *orderings* survive.
"""

import pytest

from repro.core.baselines.julienne import julienne_kcore
from repro.core.parallel_kcore import ParallelKCore
from repro.generators import suite
from repro.runtime.cost_model import CostModelOverrides, DEFAULT_COST_MODEL

PERTURBATIONS = {
    "default": {},
    "expensive-edges": {"edge_op": 2.0, "vertex_op": 2.0},
    "cheap-contention": {"contended_atomic_op": 60.0},
    "dear-contention": {"contended_atomic_op": 240.0},
    "cheap-barriers": {"omega_time": 250.0},
    "dear-barriers": {"omega_time": 1000.0},
    "costly-histogram": {"histogram_op": 8.0},
}


def model_for(name):
    return CostModelOverrides().with_fields(**PERTURBATIONS[name])


@pytest.mark.parametrize("name", sorted(PERTURBATIONS))
class TestOrderingsSurvive:
    def test_vgc_still_wins_on_grid(self, name):
        model = model_for(name)
        graph = suite.load("GRID")
        plain = ParallelKCore(
            sampling=False, vgc=False, buckets="1", model=model
        ).decompose(graph)
        vgc = ParallelKCore(
            sampling=False, vgc=True, buckets="1", model=model
        ).decompose(graph)
        assert vgc.metrics.time_on(96, model) < plain.metrics.time_on(
            96, model
        ), name

    def test_sampling_still_wins_on_tw(self, name):
        model = model_for(name)
        graph = suite.load("TW-S")
        plain = ParallelKCore(
            sampling=False, vgc=False, buckets="1", model=model
        ).decompose(graph)
        sampled = ParallelKCore(
            sampling=True, vgc=False, buckets="1", model=model
        ).decompose(graph)
        assert sampled.metrics.time_on(
            96, model
        ) < plain.metrics.time_on(96, model), name

    def test_ours_still_beats_julienne_on_grid(self, name):
        model = model_for(name)
        graph = suite.load("GRID")
        ours = ParallelKCore(model=model).decompose(graph)
        jul = julienne_kcore(graph, model)
        assert ours.metrics.time_on(96, model) < jul.metrics.time_on(
            96, model
        ), name
