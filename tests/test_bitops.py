"""Integer bit tricks: bit_length64, sorted_member_mask, bucket_indices.

The HBS bucket map must be exact for *any* representable key: float64
``log2`` loses exactness near power-of-two boundaries once offsets
outgrow the 53-bit mantissa, which is why :func:`bucket_indices` uses
integer bit-length arithmetic.  These tests pin the scalar/vectorized
equivalence far past that boundary (keys up to ``2**40`` and beyond).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.primitives.bitops import bit_length64, sorted_member_mask
from repro.structures.hbs import bucket_index, bucket_indices


def _boundary_values(limit: int) -> np.ndarray:
    """0, 1 and every 2**k - 1, 2**k, 2**k + 1 up to ``limit``."""
    values = {0, 1}
    power = 2
    while power <= limit:
        values.update((power - 1, power, power + 1))
        power *= 2
    return np.array(sorted(v for v in values if v <= limit), dtype=np.int64)


class TestBitLength64:
    def test_matches_python_bit_length_on_boundaries(self):
        values = _boundary_values(2**62)
        got = bit_length64(values)
        expected = [int(v).bit_length() for v in values.tolist()]
        assert got.tolist() == expected

    def test_matches_python_bit_length_randomized(self):
        rng = np.random.default_rng(42)
        exponents = rng.integers(0, 63, size=2000)
        values = (
            rng.integers(0, 2**62, size=2000) >> (62 - exponents)
        ).astype(np.int64)
        got = bit_length64(values)
        expected = [int(v).bit_length() for v in values.tolist()]
        assert got.tolist() == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_length64(np.array([3, -1], dtype=np.int64))

    def test_empty(self):
        assert bit_length64(np.zeros(0, dtype=np.int64)).size == 0


class TestSortedMemberMask:
    def test_matches_isin_randomized(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            values = rng.integers(0, 200, size=rng.integers(0, 60))
            targets = np.unique(rng.integers(0, 200, size=rng.integers(0, 40)))
            got = sorted_member_mask(values, targets)
            expected = np.isin(values, targets)
            assert np.array_equal(got, expected)

    def test_empty_targets(self):
        values = np.array([1, 2, 3], dtype=np.int64)
        mask = sorted_member_mask(values, np.zeros(0, dtype=np.int64))
        assert not mask.any() and mask.size == 3

    def test_empty_values(self):
        mask = sorted_member_mask(
            np.zeros(0, dtype=np.int64), np.array([1], dtype=np.int64)
        )
        assert mask.size == 0


class TestBucketIndicesEquivalence:
    @pytest.mark.parametrize("base", [0, 1, 7, 1000])
    def test_matches_scalar_small_offsets(self, base):
        keys = np.arange(base, base + 600, dtype=np.int64)
        got = bucket_indices(keys, base)
        expected = [bucket_index(int(k), base) for k in keys.tolist()]
        assert got.tolist() == expected

    def test_matches_scalar_up_to_2_pow_40(self):
        base = 5
        offsets = _boundary_values(2**40)
        keys = offsets + base
        got = bucket_indices(keys, base)
        expected = [bucket_index(int(k), base) for k in keys.tolist()]
        assert got.tolist() == expected

    def test_matches_scalar_randomized_large(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 2**40, size=3000).astype(np.int64)
        got = bucket_indices(keys, 0)
        expected = [bucket_index(int(k), 0) for k in keys.tolist()]
        assert got.tolist() == expected

    def test_rejects_key_below_base(self):
        with pytest.raises(ValueError):
            bucket_indices(np.array([3], dtype=np.int64), 4)
