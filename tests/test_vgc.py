"""Tests for vertical granularity control (Sec. 4.2)."""

import numpy as np
import pytest

from repro.core.framework import FrameworkConfig, decompose
from repro.core.vgc import DEFAULT_QUEUE_SIZE, VGCConfig
from repro.core.verify import reference_coreness
from repro.generators import grid_2d, path_graph, road_like


class TestConfig:
    def test_defaults(self):
        config = VGCConfig()
        assert config.queue_size == DEFAULT_QUEUE_SIZE

    def test_validation(self):
        with pytest.raises(ValueError):
            VGCConfig(queue_size=0)
        with pytest.raises(ValueError):
            VGCConfig(edge_budget=0)


def _rho(graph, vgc: bool, queue_size: int = DEFAULT_QUEUE_SIZE) -> int:
    config = FrameworkConfig(
        peel="online", buckets="1", vgc=vgc, vgc_queue_size=queue_size
    )
    return decompose(graph, config).rho


class TestSubroundReduction:
    def test_grid_subrounds_shrink(self):
        g = grid_2d(30, 30)
        assert _rho(g, vgc=True) < _rho(g, vgc=False)

    def test_path_collapses_to_few_subrounds(self):
        """A path is one long chain: VGC absorbs it almost entirely."""
        g = path_graph(200)
        without = _rho(g, vgc=False)
        with_vgc = _rho(g, vgc=True)
        assert without >= 100  # peeling eats two endpoints per subround
        assert with_vgc <= without // 10

    def test_road_reduction(self):
        g = road_like(2000, seed=1)
        assert _rho(g, vgc=True) <= _rho(g, vgc=False)

    def test_vgc_never_increases_subrounds(self, any_graph):
        assert _rho(any_graph, vgc=True) <= _rho(any_graph, vgc=False)


class TestQueueBudget:
    def test_queue_size_one_matches_plain_subrounds(self):
        """A 1-slot queue cannot absorb anything: rho equals plain's."""
        g = grid_2d(15, 15)
        assert _rho(g, vgc=True, queue_size=1) == _rho(g, vgc=False)

    def test_larger_queue_absorbs_more(self):
        g = path_graph(300)
        small = _rho(g, vgc=True, queue_size=4)
        large = _rho(g, vgc=True, queue_size=256)
        assert large <= small

    def test_exactness_for_extreme_queue_sizes(self, any_graph):
        ref = reference_coreness(any_graph)
        for queue_size in (1, 2, 7, 1000):
            config = FrameworkConfig(
                peel="online",
                buckets="1",
                vgc=True,
                vgc_queue_size=queue_size,
            )
            got = decompose(any_graph, config).coreness
            assert np.array_equal(got, ref), queue_size


class TestLocalSearchAccounting:
    def test_local_hits_recorded(self):
        g = path_graph(100)
        config = FrameworkConfig(peel="online", buckets="1", vgc=True)
        result = decompose(g, config)
        assert result.metrics.local_search_hits > 0

    def test_no_local_hits_without_vgc(self):
        g = path_graph(100)
        config = FrameworkConfig(peel="online", buckets="1", vgc=False)
        result = decompose(g, config)
        assert result.metrics.local_search_hits == 0

    def test_work_still_linear(self):
        g = road_like(3000, seed=2)
        config = FrameworkConfig(peel="online", buckets="1", vgc=True)
        result = decompose(g, config)
        assert result.metrics.work <= 25 * (g.n + g.m)
