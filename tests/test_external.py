"""Tests for the semi-external (edges-on-disk) decomposition."""

import numpy as np
import pytest

from repro.core.external import (
    semi_external_coreness,
    write_edge_file,
)
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi,
    grid_2d,
    hcns,
    power_law_with_hub,
)


def run_semi_external(graph, tmp_path, **kwargs):
    path = tmp_path / "edges.bin"
    written = write_edge_file(graph, path)
    assert written == graph.num_edges
    return semi_external_coreness(path, graph.n, **kwargs)


class TestCorrectness:
    def test_er(self, tmp_path):
        g = erdos_renyi(300, 7.0, seed=1)
        result = run_semi_external(g, tmp_path)
        assert np.array_equal(result.coreness, reference_coreness(g))

    def test_grid(self, tmp_path):
        g = grid_2d(12, 12)
        result = run_semi_external(g, tmp_path)
        assert np.array_equal(result.coreness, reference_coreness(g))

    def test_hub_graph(self, tmp_path):
        g = power_law_with_hub(800, 4, hub_count=2, hub_degree=200, seed=2)
        result = run_semi_external(g, tmp_path)
        assert np.array_equal(result.coreness, reference_coreness(g))

    def test_hcns(self, tmp_path):
        g = hcns(24)
        result = run_semi_external(g, tmp_path)
        assert np.array_equal(result.coreness, reference_coreness(g))

    def test_clique_converges_in_two_passes(self, tmp_path):
        g = complete_graph(20)
        result = run_semi_external(g, tmp_path)
        # Degree pass + one confirming refinement pass.
        assert result.passes <= 3

    def test_empty_graph(self, tmp_path):
        g = empty_graph(5)
        result = run_semi_external(g, tmp_path)
        assert np.all(result.coreness == 0)


class TestStreamingWriter:
    @pytest.mark.parametrize("chunk_edges", [1, 7, 64, 1 << 16])
    def test_chunked_write_byte_identical(self, tmp_path, chunk_edges):
        """The streaming writer must reproduce the monolithic encoding."""
        from repro.graphs.transform import all_edges

        g = power_law_with_hub(500, 4, hub_count=2, hub_degree=120, seed=5)
        reference = all_edges(g).astype("<i8").tobytes()
        path = tmp_path / "edges.bin"
        written = write_edge_file(g, path, chunk_edges=chunk_edges)
        assert path.read_bytes() == reference
        assert written == g.num_edges

    def test_empty_graph_writes_empty_file(self, tmp_path):
        path = tmp_path / "edges.bin"
        assert write_edge_file(empty_graph(5), path, chunk_edges=3) == 0
        assert path.read_bytes() == b""

    def test_nonpositive_chunk_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_edge_file(erdos_renyi(20, 3.0, seed=6),
                            tmp_path / "edges.bin", chunk_edges=0)


class TestStreaming:
    def test_small_chunks_agree(self, tmp_path):
        """Chunk size must not change the answer (pure streaming)."""
        g = erdos_renyi(200, 6.0, seed=3)
        big = run_semi_external(g, tmp_path, chunk_edges=1 << 16)
        small = run_semi_external(g, tmp_path, chunk_edges=7)
        assert np.array_equal(big.coreness, small.coreness)
        assert big.passes == small.passes

    def test_pass_limit_raises(self, tmp_path):
        from repro.generators import path_graph

        g = path_graph(200)
        with pytest.raises(RuntimeError):
            run_semi_external(g, tmp_path, max_passes=1)

    def test_corrupt_file_detected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x01" * 24)  # 3 int64s: odd endpoint count
        with pytest.raises(ValueError):
            semi_external_coreness(path, 4)

    def test_negative_n_rejected(self, tmp_path):
        path = tmp_path / "edges.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            semi_external_coreness(path, -1)

    def test_memory_footprint_reported(self, tmp_path):
        g = erdos_renyi(400, 8.0, seed=4)
        result = run_semi_external(g, tmp_path)
        assert result.peak_memory_values > 0
