"""Tests for the anchored k-core (unraveling prevention)."""

import numpy as np
import pytest

from repro.core.anchored import anchor_greedy, anchored_kcore
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graphs.csr import CSRGraph


class TestAnchoredCore:
    def test_no_anchors_is_plain_kcore(self, medium_er):
        for k in (2, 3, 4):
            members = anchored_kcore(medium_er, k, [])
            expected = reference_coreness(medium_er) >= k
            assert np.array_equal(members, expected), k

    def test_anchor_always_survives(self):
        g = path_graph(6)  # coreness 1 everywhere
        members = anchored_kcore(g, 2, [3])
        assert members[3]

    def test_anchored_path_recruits_nothing_at_k2(self):
        # A path vertex anchored at k=2 cannot give its neighbors two
        # supports each, so only the anchor itself stays.
        g = path_graph(8)
        members = anchored_kcore(g, 2, [4])
        assert members.sum() == 1

    def test_anchor_saves_a_broken_ring(self):
        # Cycle with one edge removed (a path): the 2-core is empty, but
        # anchoring BOTH endpoints restores the whole chain: interior
        # vertices have their 2 path neighbors, endpoints are anchored.
        g = path_graph(10)
        members = anchored_kcore(g, 2, [0, 9])
        assert members.all()

    def test_monotone_in_anchor_set(self):
        g = erdos_renyi(150, 4.0, seed=2)
        small = anchored_kcore(g, 3, [0])
        big = anchored_kcore(g, 3, [0, 1, 2])
        assert small.sum() <= big.sum()
        assert np.all(big[small])  # supersets keep everyone

    def test_validation(self, triangle):
        with pytest.raises(ValueError):
            anchored_kcore(triangle, -1, [])
        with pytest.raises(IndexError):
            anchored_kcore(triangle, 2, [7])


class TestAnchorGreedy:
    def test_greedy_myopia_vs_optimal_pair(self):
        """The path exhibits the greedy's known unbounded gap.

        Anchoring both endpoints restores the whole chain (interior
        vertices regain two supports), but no SINGLE anchor recruits
        anyone, so the one-step greedy cannot discover the pair —
        exactly the hardness phenomenon of Bhawalkar et al.
        """
        g = path_graph(10)
        optimal = anchored_kcore(g, 2, [0, 9])
        assert optimal.all()  # the synergistic pair rebuilds everything
        result = anchor_greedy(g, 2, budget=2)
        assert result.core_sizes[0] == 0
        assert result.core_sizes[-1] < 10  # myopia: pair synergy missed

    def test_star_anchoring_hub_recruits_no_leaves(self):
        g = star_graph(12)
        result = anchor_greedy(g, 2, budget=1)
        # Leaves have degree 1 even with the hub anchored.
        assert result.core_sizes[-1] <= 1

    def test_core_sizes_monotone(self):
        g = erdos_renyi(120, 3.0, seed=3)
        result = anchor_greedy(g, 3, budget=3)
        assert result.core_sizes == sorted(result.core_sizes)

    def test_state_matches_direct_computation(self):
        g = erdos_renyi(120, 3.5, seed=4)
        result = anchor_greedy(g, 3, budget=3)
        direct = anchored_kcore(g, 3, result.anchors)
        assert int(direct.sum()) == result.core_sizes[-1]

    def test_budget_zero(self):
        g = complete_graph(5)
        result = anchor_greedy(g, 3, budget=0)
        assert result.anchors == []
        assert result.core_sizes == [5]

    def test_full_graph_needs_no_anchors(self):
        g = cycle_graph(8)
        result = anchor_greedy(g, 2, budget=2)
        # Everyone is already in the 2-core; greedy stops early.
        assert result.core_sizes[0] == 8
        assert result.anchors == []

    def test_anchor_collapse_duality(self):
        """Anchoring the greedy collapser's picks undoes the collapse."""
        from repro.core.collapse import collapse_kcore_greedy

        g = cycle_graph(15)
        attack = collapse_kcore_greedy(g, 2, budget=1)
        # The attack removed one vertex and unraveled the ring; anchoring
        # that vertex's two neighbors in the damaged graph restores all
        # survivors.
        from repro.graphs.transform import remove_vertices

        damaged = remove_vertices(g, attack.removed)
        endpoints = [0, damaged.n - 1]  # the broken ring is a path
        restored = anchored_kcore(damaged, 2, endpoints)
        assert restored.all()

    def test_validation(self, triangle):
        with pytest.raises(ValueError):
            anchor_greedy(triangle, 2, budget=-1)
