"""Round-trip and error tests for graph serialization."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph
from repro.graphs.io import (
    cached_graph_path,
    graph_cache_key,
    load_adjacency,
    load_cached_graph,
    load_edge_list,
    load_npz,
    save_adjacency,
    save_edge_list,
    save_npz,
    store_cached_graph,
)


class TestEdgeList:
    def test_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(small_er, path)
        loaded = load_edge_list(path)
        assert loaded == small_er

    def test_round_trip_preserves_isolated_vertices(self, tmp_path):
        g = CSRGraph.from_edges(6, [(0, 1)])  # vertices 2..5 isolated
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.n == 6

    def test_explicit_n_overrides(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        assert load_edge_list(path, n=10).n == 10

    def test_infers_n_without_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 4\n2 3\n")
        assert load_edge_list(path).n == 5

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        assert load_edge_list(path).num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert load_edge_list(path).name == "mygraph"


class TestAdjacency:
    def test_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.adj"
        save_adjacency(small_er, path)
        assert load_adjacency(path) == small_er

    def test_isolated_vertices_survive(self, tmp_path):
        g = CSRGraph.from_edges(4, [(1, 2)])
        path = tmp_path / "g.adj"
        save_adjacency(g, path)
        assert load_adjacency(path) == g

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("3\n1\n")  # claims 3 rows, has 1
        with pytest.raises(GraphFormatError):
            load_adjacency(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            load_adjacency(path)


class TestNpz:
    def test_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(small_er, path)
        loaded = load_npz(path)
        assert loaded == small_er
        assert loaded.name == small_er.name

    def test_missing_arrays_raise(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez_compressed(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_empty_graph_round_trip(self, tmp_path):
        g = CSRGraph.from_edges(0, [])
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path).n == 0

    def test_uncompressed_round_trip_with_mmap(self, small_er, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(small_er, path, compress=False)
        loaded = load_npz(path, mmap=True)
        assert loaded == small_er
        assert loaded.name == small_er.name
        # The arrays really are memory-mapped, not copied.
        backing = (
            loaded.indptr
            if isinstance(loaded.indptr, np.memmap)
            else loaded.indptr.base
        )
        assert isinstance(backing, np.memmap)

    def test_mmap_falls_back_on_compressed(self, small_er, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(small_er, path, compress=True)
        assert load_npz(path, mmap=True) == small_er


class TestGraphCache:
    def test_key_covers_generator_params_and_seed(self):
        base = graph_cache_key("barabasi_albert", {"n": 10, "seed": 1})
        assert base == graph_cache_key(
            "barabasi_albert", {"seed": 1, "n": 10}
        )
        assert base != graph_cache_key("rmat", {"n": 10, "seed": 1})
        assert base != graph_cache_key(
            "barabasi_albert", {"n": 10, "seed": 2}
        )
        assert base != graph_cache_key(
            "barabasi_albert", {"n": 11, "seed": 1}
        )

    def test_store_load_round_trip(self, small_er, tmp_path):
        path = cached_graph_path(tmp_path, "ER", "tiny", "abc123")
        assert load_cached_graph(path) is None
        store_cached_graph(small_er, path)
        loaded = load_cached_graph(path)
        assert loaded == small_er

    def test_corrupt_entry_is_a_miss(self, small_er, tmp_path):
        path = cached_graph_path(tmp_path, "ER", "tiny", "abc123")
        store_cached_graph(small_er, path)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        assert load_cached_graph(path) is None

    def test_suite_load_uses_cache(self, tmp_path, monkeypatch):
        from repro.generators import suite

        monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path))
        suite.load.cache_clear()
        built = suite.load("GL2-S", tiny=True)
        entries = list(tmp_path.glob("GL2-S.tiny.*.npz"))
        assert len(entries) == 1
        key = suite.SUITE["GL2-S"].cache_key("tiny")
        assert entries[0].name == f"GL2-S.tiny.{key}.npz"
        suite.load.cache_clear()
        cached = suite.load("GL2-S", tiny=True)
        assert cached == built
        assert cached.name == "GL2-S"
        suite.load.cache_clear()


class TestGzip:
    def test_edge_list_gz_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.txt.gz"
        save_edge_list(small_er, path)
        loaded = load_edge_list(path)
        assert loaded == small_er
        assert loaded.name == "g"

    def test_adjacency_gz_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.adj.gz"
        save_adjacency(small_er, path)
        assert load_adjacency(path) == small_er

    def test_gz_file_is_actually_compressed(self, tmp_path):
        import gzip

        from repro.generators import erdos_renyi

        g = erdos_renyi(500, 10.0, seed=3)
        plain = tmp_path / "g.txt"
        packed = tmp_path / "g.txt.gz"
        save_edge_list(g, plain)
        save_edge_list(g, packed)
        assert packed.stat().st_size < plain.stat().st_size
        with gzip.open(packed, "rt") as handle:
            assert handle.readline().startswith("# n")
