"""Round-trip and error tests for graph serialization."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph
from repro.graphs.io import (
    load_adjacency,
    load_edge_list,
    load_npz,
    save_adjacency,
    save_edge_list,
    save_npz,
)


class TestEdgeList:
    def test_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(small_er, path)
        loaded = load_edge_list(path)
        assert loaded == small_er

    def test_round_trip_preserves_isolated_vertices(self, tmp_path):
        g = CSRGraph.from_edges(6, [(0, 1)])  # vertices 2..5 isolated
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.n == 6

    def test_explicit_n_overrides(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        assert load_edge_list(path, n=10).n == 10

    def test_infers_n_without_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 4\n2 3\n")
        assert load_edge_list(path).n == 5

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        assert load_edge_list(path).num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert load_edge_list(path).name == "mygraph"


class TestAdjacency:
    def test_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.adj"
        save_adjacency(small_er, path)
        assert load_adjacency(path) == small_er

    def test_isolated_vertices_survive(self, tmp_path):
        g = CSRGraph.from_edges(4, [(1, 2)])
        path = tmp_path / "g.adj"
        save_adjacency(g, path)
        assert load_adjacency(path) == g

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("3\n1\n")  # claims 3 rows, has 1
        with pytest.raises(GraphFormatError):
            load_adjacency(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            load_adjacency(path)


class TestNpz:
    def test_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(small_er, path)
        loaded = load_npz(path)
        assert loaded == small_er
        assert loaded.name == small_er.name

    def test_missing_arrays_raise(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez_compressed(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_empty_graph_round_trip(self, tmp_path):
        g = CSRGraph.from_edges(0, [])
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path).n == 0


class TestGzip:
    def test_edge_list_gz_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.txt.gz"
        save_edge_list(small_er, path)
        loaded = load_edge_list(path)
        assert loaded == small_er
        assert loaded.name == "g"

    def test_adjacency_gz_round_trip(self, small_er, tmp_path):
        path = tmp_path / "g.adj.gz"
        save_adjacency(small_er, path)
        assert load_adjacency(path) == small_er

    def test_gz_file_is_actually_compressed(self, tmp_path):
        import gzip

        from repro.generators import erdos_renyi

        g = erdos_renyi(500, 10.0, seed=3)
        plain = tmp_path / "g.txt"
        packed = tmp_path / "g.txt.gz"
        save_edge_list(g, plain)
        save_edge_list(g, packed)
        assert packed.stat().st_size < plain.stat().st_size
        with gzip.open(packed, "rt") as handle:
            assert handle.readline().startswith("# n")
