"""Smoke test: every benchmark entry point runs in tiny-suite mode.

Each ``benchmarks/bench_*.py`` has a ``__main__`` block that renders its
paper table/figure to stdout.  Running them under ``REPRO_SUITE_TINY=1``
(scaled-down generator suite, shared across cases through the suite's
graph cache) keeps the whole sweep in seconds while still executing every
sweep function end to end — so a bench that bit-rots against an API
change fails here, in tier 1, not at the next full benchmark run.
"""

from __future__ import annotations

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
BENCHES = sorted(BENCH_DIR.glob("bench_*.py"))


def test_discovers_all_benches():
    assert len(BENCHES) >= 22


@pytest.mark.parametrize(
    "path", BENCHES, ids=lambda path: path.stem
)
def test_bench_main_runs_tiny(path, monkeypatch):
    monkeypatch.setenv("REPRO_SUITE_TINY", "1")
    out = io.StringIO()
    with redirect_stdout(out):
        runpy.run_path(str(path), run_name="__main__")
    # Every bench renders at least one non-empty table/series line.
    assert out.getvalue().strip(), f"{path.stem} printed nothing"
