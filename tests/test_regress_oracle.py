"""The differential oracle: every exact engine vs sequential BZ.

This is the permanent cross-engine safety net the regression subsystem
hangs off: all exact engines must agree with Batagelj–Zaversnik on every
graph family of the generator suite (tiny renditions keep the sweep in
seconds), the approximate engine must honor its (1 + eps) guarantee, and
an injected fault must be caught and minimized to a tiny reproducer.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.core.baselines.julienne import julienne_kcore
from repro.core.sequential import bz_core
from repro.generators import erdos_renyi, suite
from repro.regress import (
    APPROX_EPS,
    EXACT_ENGINES,
    check_approximate,
    check_exact,
    load_reproducer,
    run_oracle,
)
from repro.regress.matrix import ENGINES
from repro.runtime.cost_model import DEFAULT_COST_MODEL


@lru_cache(maxsize=None)
def _tiny(name: str):
    return suite.load(name, tiny=True)


@lru_cache(maxsize=None)
def _oracle_coreness(name: str) -> tuple:
    return tuple(bz_core(_tiny(name)).coreness.tolist())


class TestExactEnginesAgree:
    @pytest.mark.parametrize("engine", sorted(EXACT_ENGINES))
    @pytest.mark.parametrize("name", sorted(suite.SUITE))
    def test_engine_matches_bz(self, engine, name):
        graph = _tiny(name)
        got = EXACT_ENGINES[engine](graph, DEFAULT_COST_MODEL).coreness
        expected = np.array(_oracle_coreness(name), dtype=np.int64)
        bad = np.nonzero(expected != got)[0]
        assert bad.size == 0, (
            f"{engine} disagrees with BZ on {name} at vertices "
            f"{bad[:10].tolist()}"
        )

    def test_exact_roster_covers_all_parallel_engines(self):
        assert set(EXACT_ENGINES) == set(ENGINES) - {"bz", "approx"}

    def test_check_exact_clean_on_correct_engine(self):
        graph = _tiny("GRID")
        assert check_exact("julienne", graph).size == 0


class TestApproximateBounds:
    @pytest.mark.parametrize("eps", [0.25, 0.5, 1.0])
    @pytest.mark.parametrize(
        "name", ["LJ-S", "TW-S", "AF-S", "GL5-S", "GRID", "HCNS", "HPL"]
    )
    def test_guarantee_holds_on_suite(self, name, eps):
        from repro.core.approximate import approximate_coreness

        graph = _tiny(name)
        estimate = approximate_coreness(graph, eps=eps).coreness
        violations = check_approximate(graph, eps, estimate)
        assert violations.size == 0, violations[:10].tolist()

    def test_matrix_engine_honors_pinned_eps(self):
        graph = _tiny("LJ-S")
        estimate = ENGINES["approx"](graph, DEFAULT_COST_MODEL).coreness
        assert check_approximate(graph, APPROX_EPS, estimate).size == 0

    def test_violation_detected(self):
        graph = _tiny("GRID")
        exact = bz_core(graph).coreness
        inflated = exact * 10 + 5
        assert check_approximate(graph, 0.5, inflated, exact=exact).size


class TestFaultInjection:
    @staticmethod
    def _capped_engine(graph, model):
        """Seeded fault: silently caps coreness at 3 (wrong on kmax>3)."""
        result = julienne_kcore(graph, model)
        np.minimum(result.coreness, 3, out=result.coreness)
        return result

    def test_fault_is_caught_and_minimized(self, tmp_path):
        findings = run_oracle(
            graph_names=["LJ-S", "GRID"],
            engines={"capped": self._capped_engine},
            dump_dir=tmp_path,
        )
        # GRID (kmax == 2) cannot expose the cap; LJ-S (kmax > 3) must.
        assert [f.graph_name for f in findings] == ["LJ-S"]
        finding = findings[0]
        assert finding.engine == "capped"
        assert finding.mismatched_vertices > 0
        # ddmin shrinks the witness to (nearly) the minimal K5.
        assert finding.reproducer is not None
        assert finding.reproducer.n <= 8
        assert bz_core(finding.reproducer).coreness.max() > 3

    def test_reproducer_dump_replays(self, tmp_path):
        findings = run_oracle(
            graph_names=["LJ-S"],
            engines={"capped": self._capped_engine},
            dump_dir=tmp_path,
        )
        path = findings[0].reproducer_path
        assert path is not None and path.exists()
        graph, payload = load_reproducer(path)
        assert graph.n == payload["n"]
        expected = np.asarray(payload["expected_coreness"])
        got = self._capped_engine(graph, DEFAULT_COST_MODEL).coreness
        # The dumped failure reproduces from the file alone.
        assert np.array_equal(
            got, np.asarray(payload["got_coreness"])
        )
        assert not np.array_equal(got, expected)
        assert np.array_equal(bz_core(graph).coreness, expected)

    def test_clean_roster_yields_no_findings(self):
        findings = run_oracle(
            graph_names=["GRID", "CUBE"], minimize=False
        )
        assert findings == []


class TestOracleOffSuite:
    def test_random_graphs_agree(self):
        # Extra belt-and-braces corpus beyond the suite families.
        for seed in (1, 2, 3):
            graph = erdos_renyi(250, 7.0, seed=seed)
            expected = bz_core(graph).coreness
            for engine, runner in EXACT_ENGINES.items():
                got = runner(graph, DEFAULT_COST_MODEL).coreness
                assert np.array_equal(expected, got), (engine, seed)
