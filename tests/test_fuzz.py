"""Seeded fuzzing: every algorithm against every graph shape.

Deterministic seeds (not hypothesis) so failures reproduce byte-for-byte;
this file is the wide-net companion to the targeted property tests.
"""

import numpy as np
import pytest

from repro.core.approximate import approximate_coreness
from repro.core.baselines import julienne_kcore, park_kcore, pkc_kcore
from repro.core.batch_dynamic import BatchDynamicKCore
from repro.core.dynamic import DynamicKCore
from repro.core.framework import FrameworkConfig, decompose
from repro.core.subgraph import max_kcore_subgraph
from repro.core.verify import reference_coreness
from repro.graphs.csr import CSRGraph
from repro.graphs.transform import all_edges

SEEDS = list(range(8))


def random_graph(seed: int) -> CSRGraph:
    """Deliberately weird random graphs: skewed, clustered, sparse/dense."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 250))
    style = seed % 4
    if style == 0:  # uniform
        m = int(rng.integers(0, 4 * n))
        edges = rng.integers(0, n, size=(m, 2))
    elif style == 1:  # heavy hub
        hub = int(rng.integers(n))
        others = rng.integers(0, n, size=(2 * n, 2))
        hub_edges = np.stack(
            [np.full(n, hub), rng.integers(0, n, size=n)], axis=1
        )
        edges = np.concatenate([others, hub_edges])
    elif style == 2:  # clustered cliques
        edges = []
        size = max(int(rng.integers(2, 8)), 2)
        for start in range(0, n - size, size):
            ids = np.arange(start, start + size)
            a, b = np.meshgrid(ids, ids)
            mask = a < b
            edges.append(np.stack([a[mask], b[mask]], axis=1))
        edges = (
            np.concatenate(edges)
            if edges
            else np.zeros((0, 2), dtype=np.int64)
        )
    else:  # long chains plus chords
        ids = np.arange(n - 1)
        chain = np.stack([ids, ids + 1], axis=1)
        chords = rng.integers(0, n, size=(n // 4, 2))
        edges = np.concatenate([chain, chords])
    return CSRGraph.from_edges(n, edges, name=f"fuzz-{seed}")


@pytest.mark.parametrize("seed", SEEDS)
def test_all_solvers_agree(seed):
    graph = random_graph(seed)
    ref = reference_coreness(graph)
    configs = [
        FrameworkConfig(peel="online", buckets="1"),
        FrameworkConfig(peel="online", buckets="16", vgc=True),
        FrameworkConfig(
            peel="online", buckets="adaptive", sampling=True, vgc=True
        ),
        FrameworkConfig(peel="offline", buckets="hbs"),
    ]
    for config in configs:
        got = decompose(graph, config).coreness
        assert np.array_equal(got, ref), (seed, config.label())
    for runner in (julienne_kcore, park_kcore, pkc_kcore):
        assert np.array_equal(runner(graph).coreness, ref), (
            seed, runner.__name__,
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_subgraph_and_approx_consistent(seed):
    graph = random_graph(seed)
    ref = reference_coreness(graph)
    for k in (1, 2, 4):
        members = max_kcore_subgraph(graph, k).members
        assert np.array_equal(members, ref >= k), (seed, k)
    approx = approximate_coreness(graph, eps=0.5).coreness
    nonzero = ref > 0
    assert np.all(approx[nonzero] >= ref[nonzero]), seed
    assert np.all(approx[nonzero] <= 1.5 * ref[nonzero] + 1e-9), seed


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_dynamic_fuzz(seed):
    graph = random_graph(seed)
    dyn = DynamicKCore(graph)
    rng = np.random.default_rng(1000 + seed)
    existing = all_edges(graph)
    for _ in range(60):
        if rng.random() < 0.5 and existing.shape[0]:
            idx = int(rng.integers(existing.shape[0]))
            dyn.delete_edge(int(existing[idx, 0]), int(existing[idx, 1]))
        else:
            u, v = (int(x) for x in rng.integers(0, graph.n, size=2))
            dyn.insert_edge(u, v)
    assert np.array_equal(
        dyn.coreness, reference_coreness(dyn.snapshot())
    ), seed


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_dynamic_fuzz(seed):
    """Noisy batches (dups, self-loops filtered upstream, absent
    deletes, present inserts) against recompute and the legacy engine."""
    graph = random_graph(seed)
    batch = BatchDynamicKCore(graph)
    legacy = DynamicKCore(graph)
    rng = np.random.default_rng(2000 + seed)
    for round_index in range(8):
        raw = rng.integers(0, graph.n, size=(int(rng.integers(1, 14)), 2))
        raw = raw[raw[:, 0] != raw[:, 1]]
        split = int(rng.integers(raw.shape[0] + 1))
        insertions = [tuple(int(x) for x in row) for row in raw[:split]]
        deletions = [tuple(int(x) for x in row) for row in raw[split:]]
        if rng.random() < 0.3 and insertions:
            insertions.append(insertions[0])  # duplicate in-batch
        batch.apply_batch(insertions=insertions, deletions=deletions)
        legacy.batch_update(insertions=insertions, deletions=deletions)
        assert np.array_equal(batch.coreness, legacy.coreness), (
            seed, round_index,
        )
    assert np.array_equal(
        batch.coreness, reference_coreness(batch.snapshot())
    ), seed
    assert batch.snapshot() == legacy.snapshot(), seed
