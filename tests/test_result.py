"""Tests for the CorenessResult container."""

import numpy as np

from repro.core.parallel_kcore import ParallelKCore
from repro.generators import hcns


class TestCorenessResult:
    def setup_method(self):
        self.graph = hcns(12)
        self.result = ParallelKCore().decompose(self.graph)

    def test_kmax(self):
        assert self.result.kmax == 12

    def test_vertices_with_coreness(self):
        fives = self.result.vertices_with_coreness(5)
        assert fives.size == 1  # HCNS has exactly one vertex per level

    def test_core_members_monotone(self):
        sizes = [
            self.result.core_members(k).size
            for k in range(self.result.kmax + 1)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_core_members_zero_is_everything(self):
        assert self.result.core_members(0).size == self.graph.n

    def test_coreness_histogram(self):
        hist = self.result.coreness_histogram()
        assert hist.sum() == self.graph.n
        assert hist[12] == 13  # the clique

    def test_rho_alias(self):
        assert self.result.rho == self.result.metrics.subrounds

    def test_time_monotone_beyond_one_thread(self):
        # t(1) is pure work (no barriers); from 2 threads up, adding
        # threads never increases the simulated time.
        t2 = self.result.time_on(2)
        t8 = self.result.time_on(8)
        t96 = self.result.time_on(96)
        assert t96 <= t8 <= t2

    def test_summary_merges_metrics(self):
        summary = self.result.summary()
        assert summary["kmax"] == 12.0
        assert summary["n"] == float(self.graph.n)
        assert "work" in summary

    def test_empty_result(self):
        from repro.generators import empty_graph

        result = ParallelKCore().decompose(empty_graph(0))
        assert result.kmax == 0
        assert result.coreness_histogram().size == 0
