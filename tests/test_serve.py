"""The serving layer: stream generators, epoch reads, report schema, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.verify import reference_coreness
from repro.generators.streams import (
    DEFAULT_INTERVAL_NS,
    PROFILES,
    EdgePool,
    Query,
    UpdateBatch,
    generate_stream,
)
from repro.graphs.csr import CSRGraph
from repro.serve import (
    PERCENTILES,
    SERVE_SCHEMA_VERSION,
    CoreService,
    run_service,
)
from repro.serve.__main__ import main as serve_main


# ----------------------------------------------------------------------
# Stream generators
# ----------------------------------------------------------------------
@pytest.mark.parametrize("profile", PROFILES)
def test_stream_is_deterministic(small_er, profile):
    first = generate_stream(small_er, profile, seed=3)
    second = generate_stream(small_er, profile, seed=3)
    assert first == second
    different = generate_stream(small_er, profile, seed=4)
    assert first != different


@pytest.mark.parametrize("profile", PROFILES)
def test_stream_events_well_formed(small_er, profile):
    events = generate_stream(
        small_er, profile, batches=16, batch_size=8, seed=0
    )
    times = [event.time for event in events]
    assert times == sorted(times)
    batches = [e for e in events if isinstance(e, UpdateBatch)]
    queries = [e for e in events if isinstance(e, Query)]
    assert len(batches) == 16
    assert queries, "queries_per_batch default must produce queries"
    for batch in batches:
        for u, v in batch.insertions + batch.deletions:
            assert 0 <= u < small_er.n and 0 <= v < small_er.n
            assert u != v
    for query in queries:
        assert 0 <= query.vertex < small_er.n


def test_stream_replays_consistently(small_er):
    """Deletions always target present edges, insertions absent ones."""
    events = generate_stream(
        small_er, "churn", batches=24, batch_size=12, seed=5
    )
    current = set()
    src = np.repeat(np.arange(small_er.n), np.diff(small_er.indptr))
    for s, d in zip(src.tolist(), small_er.indices.tolist()):
        if s < d:
            current.add((s, d))
    for event in events:
        if not isinstance(event, UpdateBatch):
            continue
        for u, v in event.deletions:
            key = (min(u, v), max(u, v))
            assert key in current, "stream deleted an absent edge"
            current.discard(key)
        for u, v in event.insertions:
            key = (min(u, v), max(u, v))
            assert key not in current, "stream inserted a present edge"
            current.add(key)


def test_stream_rejects_bad_input(small_er):
    with pytest.raises(ValueError, match="profile"):
        generate_stream(small_er, "warp-speed")
    with pytest.raises(ValueError):
        generate_stream(CSRGraph.from_edges(1, []), "steady")


def test_edge_pool_swap_remove():
    pool = EdgePool(
        CSRGraph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
    )
    assert len(pool) == 3 and (2, 3) in pool
    removed = pool.remove_at(0)
    assert removed not in pool and len(pool) == 2
    pool.add((1, 2))
    assert (1, 2) in pool and len(pool) == 3


# ----------------------------------------------------------------------
# CoreService semantics
# ----------------------------------------------------------------------
def test_read_your_epoch_consistency(triangle):
    """Queries between commits see exactly the committed coreness."""
    service = CoreService(triangle)
    before = reference_coreness(triangle)

    # A query before any batch reads epoch 0.
    value, epoch = service.submit_query(Query(time=1.0, vertex=0))
    assert (value, epoch) == (int(before[0]), 0)

    commit = service.submit_batch(
        UpdateBatch(time=10.0, insertions=(), deletions=(((0, 1)),))
    )
    assert commit > 10.0

    # Arrivals before the commit still read epoch 0; at/after, epoch 1.
    stale_value, stale_epoch = service.submit_query(
        Query(time=(10.0 + commit) / 2, vertex=0)
    )
    assert (stale_value, stale_epoch) == (int(before[0]), 0)
    fresh_value, fresh_epoch = service.submit_query(
        Query(time=commit, vertex=0)
    )
    assert fresh_epoch == 1
    assert fresh_value == int(service.engine.coreness[0]) == 1


def test_writer_queues_batches(triangle):
    """A batch arriving mid-peel waits for the writer to free up."""
    service = CoreService(triangle, threads=1)
    first_commit = service.submit_batch(
        UpdateBatch(time=0.0, insertions=(), deletions=((0, 1),))
    )
    second_commit = service.submit_batch(
        UpdateBatch(time=0.0, insertions=((0, 1),), deletions=())
    )
    assert second_commit > first_commit
    # Latency of the second batch includes the queueing delay.
    assert service.stats.update_latency_ns[1] >= (
        second_commit - first_commit
    )


def test_epoch_pruning_keeps_visible_epoch(small_er):
    service = CoreService(small_er)
    events = generate_stream(
        small_er, "steady", batches=12, batch_size=6, seed=1
    )
    service.replay(events)
    # After a replay, old epochs have been pruned as queries advanced.
    assert len(service._epochs) <= service.engine.epoch + 1
    late = service.committed_at(float("inf"))
    assert late.epoch == service.engine.epoch
    assert np.array_equal(late.coreness, service.engine.coreness)


def test_replay_rejects_unknown_events(triangle):
    with pytest.raises(TypeError, match="unknown stream event"):
        CoreService(triangle).replay([object()])


# ----------------------------------------------------------------------
# Report schema and determinism
# ----------------------------------------------------------------------
def serve_report(graph, profile="steady", seed=0):
    events = generate_stream(
        graph, profile, batches=10, batch_size=8, seed=seed
    )
    return run_service(
        graph, events, context={"profile": profile, "seed": seed}
    )


@pytest.mark.parametrize("profile", PROFILES)
def test_same_seed_identical_report(small_er, profile):
    first = json.dumps(serve_report(small_er, profile), sort_keys=True)
    second = json.dumps(serve_report(small_er, profile), sort_keys=True)
    assert first == second


def test_report_schema(small_er):
    report = serve_report(small_er)
    assert report["schema"] == SERVE_SCHEMA_VERSION == 2
    assert report["stream"] == {"profile": "steady", "seed": 0}
    for section in (
        "events", "throughput", "latency", "histograms", "epochs"
    ):
        assert section in report, section
    # v2: registry-sourced histogram views next to the exact percentiles.
    hists = report["histograms"]
    assert hists["obs_schema_version"] == 1
    assert hists["staleness_ns"]["count"] == report["events"]["queries"]
    assert hists["batch_size"]["count"] == report["events"]["batches"]
    assert (
        hists["commit_latency_ns"]["count"] == report["events"]["batches"]
    )
    assert len(hists["staleness_ns"]["counts"]) == (
        len(hists["staleness_ns"]["boundaries"]) + 1
    )
    assert report["events"]["batches"] == 10
    assert report["epochs"]["committed"] == 10
    assert report["throughput"]["sim_duration_ns"] > 0
    assert report["throughput"]["updates_per_sec"] > 0
    for distribution in ("update_ns", "query_ns", "staleness_ns"):
        summary = report["latency"][distribution]
        for p in PERCENTILES:
            assert f"p{p}" in summary
        assert summary["max"] >= summary[f"p{PERCENTILES[-1]}"]
    assert set(report["coreness"]) == {"kmax", "sum", "sha256"}
    assert len(report["answers_sha256"]) == 16
    json.dumps(report)  # must be JSON-serializable as-is


def test_final_state_matches_recompute(small_er):
    events = generate_stream(
        small_er, "bursty", batches=12, batch_size=10, seed=2
    )
    service = CoreService(small_er)
    service.replay(events)
    final = service.engine.snapshot()
    assert np.array_equal(
        service.engine.coreness, reference_coreness(final)
    )


def test_interval_scales_duration(small_er):
    fast = generate_stream(
        small_er, "steady", batches=4, interval_ns=1e3, seed=0
    )
    slow = generate_stream(
        small_er, "steady", batches=4, interval_ns=DEFAULT_INTERVAL_NS, seed=0
    )
    assert slow[-1].time > fast[-1].time


# ----------------------------------------------------------------------
# CLI smoke: python -m repro.serve --tiny
# ----------------------------------------------------------------------
def test_cli_tiny_smoke(tmp_path, capsys):
    output = tmp_path / "serve.json"
    status = serve_main(
        ["--tiny", "--seed", "3", "--output", str(output)]
    )
    assert status == 0
    assert "wrote" in capsys.readouterr().out
    report = json.loads(output.read_text())
    assert report["schema"] == SERVE_SCHEMA_VERSION
    assert report["events"]["batches"] == 12
    assert report["stream"]["seed"] == 3

    # Stdout mode prints the same JSON document.
    status = serve_main(["--tiny", "--seed", "3"])
    assert status == 0
    assert json.loads(capsys.readouterr().out) == report


def test_cli_trace_export(tmp_path, capsys):
    trace = tmp_path / "serve.trace.json"
    status = serve_main(["--tiny", "--trace", str(trace)])
    assert status == 0
    capsys.readouterr()
    payload = json.loads(trace.read_text())
    names = {event.get("name") for event in payload["traceEvents"]}
    assert "batch_commit" in names
