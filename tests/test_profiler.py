"""Tests for the Cilkview-style parallelism profiler."""

import json

import pytest

from repro.core.parallel_kcore import ParallelKCore
from repro.generators import grid_2d
from repro.runtime.metrics import RunMetrics
from repro.runtime.profiler import (
    UNTAGGED,
    profile,
    render_report,
    render_report_json,
)


class TestProfile:
    def test_basic_quantities(self):
        m = RunMetrics()
        m.record_parallel(1000.0, 10.0, barriers=2, tag="a")
        m.record_parallel(500.0, 5.0, barriers=1, tag="b")
        report = profile(m)
        assert report.work == 1500.0
        assert report.span == 15.0
        assert report.parallelism == pytest.approx(100.0)
        assert report.burdened_parallelism < report.parallelism
        assert report.barriers == 3

    def test_tags_sorted_by_time(self):
        m = RunMetrics()
        m.record_parallel(10.0, 1.0, barriers=1, tag="cheap")
        m.record_parallel(10.0, 1.0, barriers=50, tag="expensive")
        report = profile(m)
        assert report.tags[0].tag == "expensive"
        assert report.dominant_tag() == "expensive"

    def test_empty_metrics(self):
        report = profile(RunMetrics())
        assert report.work == 0.0
        assert report.dominant_tag() == UNTAGGED

    def test_real_run_dominant_tag_is_peel_or_barriers(self):
        # Large enough that parallelism pays for the barriers.
        result = ParallelKCore().decompose(grid_2d(80, 80))
        report = profile(result.metrics)
        assert report.work == result.metrics.work
        assert len(report.tags) > 3
        assert report.speedup_96 > 1.0

    def test_tag_time_adds_up(self):
        result = ParallelKCore.plain().decompose(grid_2d(15, 15))
        report = profile(result.metrics)
        total = sum(t.time96 for t in report.tags)
        assert total == pytest.approx(result.time_on(96), rel=1e-9)


class TestRender:
    def test_render_contains_sections(self):
        m = RunMetrics()
        m.record_parallel(100.0, 10.0, barriers=1, tag="peel")
        text = render_report(profile(m), title="run")
        assert "run" in text
        assert "parallelism" in text
        assert "peel" in text

    def test_untagged_label(self):
        m = RunMetrics()
        m.record_parallel(1.0, 1.0, barriers=0, tag="")
        assert UNTAGGED in render_report(profile(m))

    def test_dominant_tag_matches_rendered_sentinel(self):
        # Regression: dominant_tag() used to return "" for untagged-
        # dominant runs while render_report printed "<untagged>"; both
        # sides now share the same sentinel.
        m = RunMetrics()
        m.record_parallel(100.0, 10.0, barriers=1, tag="")
        report = profile(m)
        assert report.dominant_tag() == UNTAGGED
        assert report.dominant_tag() in render_report(report)


class TestJsonReport:
    def test_to_json_round_trips(self):
        m = RunMetrics()
        m.record_parallel(1000.0, 10.0, barriers=2, tag="peel")
        m.record_parallel(10.0, 1.0, barriers=0, tag="")
        report = profile(m)
        data = json.loads(render_report_json(report))
        assert data["work"] == report.work
        assert data["barriers"] == report.barriers
        assert data["dominant_tag"] == "peel"
        tags = {t["tag"]: t for t in data["tags"]}
        assert set(tags) == {"peel", UNTAGGED}
        assert tags["peel"]["steps"] == 1

    def test_to_json_maps_infinities_to_none(self):
        data = profile(RunMetrics()).to_json()
        assert data["parallelism"] is None
        assert data["speedup_96"] is None
        assert data["dominant_tag"] == UNTAGGED
        json.dumps(data)  # strict-JSON serializable

    def test_tag_time96_consistent_with_time_on(self):
        result = ParallelKCore.plain().decompose(grid_2d(15, 15))
        data = profile(result.metrics).to_json()
        total = sum(t["time96"] for t in data["tags"])
        assert total == pytest.approx(result.time_on(96), rel=1e-9)
