"""Tests for the parallel primitives (pack, histogram, scan)."""

import numpy as np
import pytest

from repro.primitives import (
    dense_histogram,
    exclusive_scan,
    filter_by,
    histogram,
    inclusive_scan,
    pack,
    pack_index,
    reduce_max,
    reduce_sum,
)
from repro.runtime.simulator import SimRuntime


class TestPack:
    def test_matches_boolean_indexing(self, rng):
        values = rng.integers(0, 100, size=500)
        flags = rng.random(500) < 0.3
        assert np.array_equal(pack(values, flags), values[flags])

    def test_empty(self):
        out = pack(np.array([]), np.array([], dtype=bool))
        assert out.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pack(np.arange(3), np.array([True]))

    def test_charges_runtime(self):
        rt = SimRuntime()
        pack(np.arange(100), np.arange(100) % 2 == 0, runtime=rt)
        assert rt.metrics.work == pytest.approx(100 * rt.model.scan_op)
        assert rt.metrics.barriers == 1

    def test_pack_index(self):
        flags = np.array([True, False, True, True])
        assert list(pack_index(flags)) == [0, 2, 3]

    def test_filter_by(self):
        values = np.arange(20)
        out = filter_by(values, lambda x: x % 5 == 0)
        assert list(out) == [0, 5, 10, 15]


class TestHistogram:
    def test_counts_match_numpy(self, rng):
        keys = rng.integers(0, 50, size=1000)
        result = histogram(keys)
        expected_keys, expected_counts = np.unique(keys, return_counts=True)
        assert np.array_equal(result.keys, expected_keys)
        assert np.array_equal(result.counts, expected_counts)

    def test_empty(self):
        result = histogram(np.array([], dtype=np.int64))
        assert result.keys.size == 0

    def test_charges_semisort_cost(self):
        rt = SimRuntime()
        histogram(np.zeros(100, dtype=np.int64), runtime=rt, phases=3)
        assert rt.metrics.work == pytest.approx(
            100 * rt.model.histogram_op
        )
        assert rt.metrics.barriers == 3

    def test_dense_histogram(self):
        keys = np.array([0, 1, 1, 3], dtype=np.int64)
        counts = dense_histogram(keys, domain=5)
        assert list(counts) == [1, 2, 0, 1, 0]

    def test_dense_histogram_domain_check(self):
        with pytest.raises(ValueError):
            dense_histogram(np.array([5]), domain=5)


class TestScan:
    def test_exclusive(self):
        out = exclusive_scan(np.array([3, 1, 4, 1]))
        assert list(out) == [0, 3, 4, 8]

    def test_inclusive(self):
        out = inclusive_scan(np.array([3, 1, 4, 1]))
        assert list(out) == [3, 4, 8, 9]

    def test_exclusive_empty(self):
        assert exclusive_scan(np.array([], dtype=np.int64)).size == 0

    def test_exclusive_single(self):
        assert list(exclusive_scan(np.array([7]))) == [0]

    def test_reduce_sum(self):
        assert reduce_sum(np.arange(10)) == 45

    def test_reduce_max(self):
        assert reduce_max(np.array([3, 9, 2])) == 9
        assert reduce_max(np.array([], dtype=np.int64)) == 0

    def test_scan_charges_runtime(self):
        rt = SimRuntime()
        inclusive_scan(np.arange(40), runtime=rt)
        assert rt.metrics.work == pytest.approx(40 * rt.model.scan_op)
