"""Property-based tests (hypothesis) for core invariants and structures."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.framework import FrameworkConfig, decompose
from repro.core.parallel_kcore import ParallelKCore
from repro.core.sequential import bz_core
from repro.core.subgraph import max_kcore_subgraph
from repro.core.verify import check_core_membership, reference_coreness
from repro.graphs.csr import CSRGraph
from repro.structures.hash_bag import HashBag
from repro.structures.hash_table import PhaseConcurrentHashTable
from repro.structures.hbs import bucket_index, interval_layout

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_n=60, max_m=180):
    """Random small graphs (possibly with isolated vertices)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=0,
            max_size=m,
        )
    )
    return CSRGraph.from_edges(n, edges)


class TestCorenessInvariants:
    @SLOW
    @given(graphs())
    def test_all_algorithms_agree(self, graph):
        ref = reference_coreness(graph)
        for config in (
            FrameworkConfig(peel="online", buckets="1"),
            FrameworkConfig(peel="online", buckets="hbs", vgc=True),
            FrameworkConfig(
                peel="online", buckets="adaptive", sampling=True, vgc=True
            ),
            FrameworkConfig(peel="offline", buckets="16"),
        ):
            got = decompose(graph, config).coreness
            assert np.array_equal(got, ref), config.label()
        assert np.array_equal(bz_core(graph).coreness, ref)

    @SLOW
    @given(graphs())
    def test_coreness_bounded_by_degree(self, graph):
        kappa = reference_coreness(graph)
        assert np.all(kappa <= graph.degrees)

    @SLOW
    @given(graphs())
    def test_membership_feasibility(self, graph):
        kappa = ParallelKCore().coreness(graph)
        assert check_core_membership(graph, kappa)

    @SLOW
    @given(graphs())
    def test_subgraph_consistent_with_coreness(self, graph):
        kappa = reference_coreness(graph)
        for k in (1, 2, 3):
            members = max_kcore_subgraph(graph, k).members
            assert np.array_equal(members, kappa >= k)

    @SLOW
    @given(graphs(), st.integers(0, 5))
    def test_core_monotone_in_k(self, graph, k):
        result = ParallelKCore().decompose(graph)
        inner = set(result.core_members(k + 1).tolist())
        outer = set(result.core_members(k).tolist())
        assert inner <= outer

    @SLOW
    @given(graphs())
    def test_against_networkx(self, graph):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(graph.n))
        src = np.repeat(
            np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr)
        )
        nx_graph.add_edges_from(zip(src.tolist(), graph.indices.tolist()))
        expected = networkx.core_number(nx_graph)
        got = ParallelKCore().coreness(graph)
        for v in range(graph.n):
            assert got[v] == expected[v], v


class TestHashBagProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 10_000), max_size=300))
    def test_behaves_like_multiset(self, values):
        bag = HashBag(max(len(values), 1))
        for v in values:
            bag.insert(v)
        assert sorted(bag.extract_all().tolist()) == sorted(values)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 1000), max_size=100),
        st.lists(st.integers(0, 1000), max_size=100),
    )
    def test_extract_insert_cycles(self, first, second):
        bag = HashBag(max(len(first) + len(second), 1))
        bag.insert_many(np.asarray(first, dtype=np.int64))
        got_first = sorted(bag.extract_all().tolist())
        bag.insert_many(np.asarray(second, dtype=np.int64))
        got_second = sorted(bag.extract_all().tolist())
        assert got_first == sorted(first)
        assert got_second == sorted(second)


class TestHashTableProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(0, 10_000), st.integers(0, 100)))
    def test_behaves_like_dict(self, mapping):
        table = PhaseConcurrentHashTable(max(len(mapping), 1))
        for key, value in mapping.items():
            table.insert(key, value)
        assert len(table) == len(mapping)
        for key, value in mapping.items():
            assert table.lookup(key) == value
        keys, values = table.items()
        assert dict(zip(keys.tolist(), values.tolist())) == mapping


class TestHBSLayoutProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 100_000), st.integers(0, 1000))
    def test_bucket_index_consistent_with_layout(self, offset, base):
        key = base + offset
        layout = interval_layout(base, key)
        idx = bucket_index(key, base)
        assert idx < len(layout)
        lo, hi = layout[idx]
        assert lo <= key <= hi

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 1000), st.integers(0, 100_000))
    def test_layout_partitions_range(self, base, max_key):
        layout = interval_layout(base, base + max_key)
        # Intervals tile [base, >= base+max_key] with no gaps or overlaps.
        assert layout[0][0] == base
        for (a_lo, a_hi), (b_lo, _) in zip(layout, layout[1:]):
            assert b_lo == a_hi + 1
        assert layout[-1][1] >= base + max_key

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 100_000), st.integers(1, 1000))
    def test_bucket_index_monotone_in_key(self, key, delta):
        assert bucket_index(key, 0) <= bucket_index(key + delta, 0)


class TestGraphConstructionProperties:
    @settings(max_examples=50, deadline=None)
    @given(graphs())
    def test_symmetry(self, graph):
        """u in N(v) iff v in N(u)."""
        src = np.repeat(
            np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr)
        )
        forward = set(zip(src.tolist(), graph.indices.tolist()))
        backward = set(zip(graph.indices.tolist(), src.tolist()))
        assert forward == backward

    @settings(max_examples=50, deadline=None)
    @given(graphs())
    def test_no_self_loops_or_duplicates(self, graph):
        for v in range(graph.n):
            neigh = graph.neighbors(v).tolist()
            assert v not in neigh
            assert len(neigh) == len(set(neigh))


class TestExtensionProperties:
    @SLOW
    @given(graphs(max_n=40, max_m=100))
    def test_hindex_matches_reference(self, graph):
        from repro.core.locality import hindex_coreness

        assert np.array_equal(
            hindex_coreness(graph).coreness, reference_coreness(graph)
        )

    @SLOW
    @given(graphs(max_n=40, max_m=100), st.integers(0, 3))
    def test_truss_core_bound(self, graph, _):
        from repro.core.truss import truss_decomposition

        kappa = reference_coreness(graph)
        edges, trussness = truss_decomposition(graph)
        for (u, v), t in zip(edges, trussness):
            assert 2 <= t <= min(kappa[int(u)], kappa[int(v)]) + 1

    @SLOW
    @given(
        graphs(max_n=30, max_m=60),
        st.lists(
            st.tuples(st.integers(0, 29), st.integers(0, 29)),
            max_size=25,
        ),
    )
    def test_dynamic_matches_recompute(self, graph, updates):
        from repro.core.dynamic import DynamicKCore

        dyn = DynamicKCore(graph)
        for i, (u, v) in enumerate(updates):
            u %= graph.n
            v %= graph.n
            if i % 2:
                dyn.insert_edge(u, v)
            else:
                dyn.delete_edge(u, v)
        assert np.array_equal(
            dyn.coreness, reference_coreness(dyn.snapshot())
        )

    @SLOW
    @given(graphs(max_n=40, max_m=120))
    def test_onion_layers_refine_rounds(self, graph):
        from repro.core.applications import onion_layers

        layers = onion_layers(graph)
        if graph.n:
            assert layers.min() >= 1
            assert layers.max() <= graph.n

    @SLOW
    @given(graphs(max_n=40, max_m=100))
    def test_hierarchy_partitions_vertices(self, graph):
        from repro.core.hierarchy import core_hierarchy

        roots = core_hierarchy(graph)
        covered = sorted(
            v for root in roots for v in root.vertices.tolist()
        )
        assert covered == list(range(graph.n))
