"""Tests for the ParK / PKC / Julienne / Galois baseline reimplementations."""

import numpy as np
import pytest

from repro.core.baselines import (
    galois_max_kcore,
    julienne_kcore,
    park_kcore,
    pkc_kcore,
)
from repro.core.subgraph import max_kcore_subgraph
from repro.core.verify import reference_coreness
from repro.generators import erdos_renyi, grid_2d, hcns, power_law_with_hub


@pytest.mark.parametrize(
    "runner", [julienne_kcore, park_kcore, pkc_kcore],
    ids=["julienne", "park", "pkc"],
)
def test_baselines_exact(runner, any_graph):
    result = runner(any_graph)
    assert np.array_equal(
        result.coreness, reference_coreness(any_graph)
    )


class TestParK:
    def test_work_grows_with_kmax(self):
        """ParK's O(m + kmax*n) shows on a high-coreness graph."""
        g = hcns(60)
        park = park_kcore(g)
        julienne = julienne_kcore(g)
        # ParK re-scans n vertices for each of the kmax rounds.
        assert park.metrics.work > 0
        scan_work = 60 * g.n * 0.25  # kmax * n * scan_op
        assert park.metrics.work >= scan_work

    def test_rounds_equal_kmax_plus_one(self):
        g = hcns(30)
        result = park_kcore(g)
        assert result.metrics.rounds >= 30

    def test_algorithm_label(self, triangle):
        assert park_kcore(triangle).algorithm == "park"


class TestPKC:
    def test_one_subround_per_round(self):
        """PKC's thread-local buffers give at most one subround per round."""
        g = grid_2d(20, 20)
        result = pkc_kcore(g)
        assert result.metrics.subrounds <= result.metrics.rounds

    def test_load_imbalance_on_chains(self):
        """On a chain-heavy graph, PKC's span approaches its work."""
        from repro.generators import path_graph

        g = path_graph(500)
        result = pkc_kcore(g, threads=8)
        peel_steps = [
            s for s in result.metrics.steps if s.tag == "pkc_round"
        ]
        # The k=1 round peels the whole path; with the chain landing on
        # few threads, the max thread carries far more than work / 8.
        big = max(peel_steps, key=lambda s: s.work)
        assert big.span > big.work / 8

    def test_contention_recorded(self):
        g = power_law_with_hub(800, 4, hub_count=2, hub_degree=300, seed=1)
        result = pkc_kcore(g)
        assert result.metrics.max_contention > 1

    def test_thread_count_override(self, small_er):
        ref = reference_coreness(small_er)
        for threads in (1, 2, 96):
            assert np.array_equal(
                pkc_kcore(small_er, threads=threads).coreness, ref
            )


class TestJulienne:
    def test_race_free_no_contention(self, small_er):
        result = julienne_kcore(small_er)
        assert result.metrics.max_contention == 0

    def test_more_barriers_per_subround_than_online(self, small_grid):
        from repro.core.framework import FrameworkConfig, decompose

        online = decompose(
            small_grid, FrameworkConfig(peel="online", buckets="16")
        )
        offline = julienne_kcore(small_grid)
        assert offline.metrics.barriers > online.metrics.barriers

    def test_work_efficient(self):
        g = erdos_renyi(1500, 8.0, seed=3)
        result = julienne_kcore(g)
        assert result.metrics.work <= 30 * (g.n + g.m)


class TestGaloisSubgraph:
    def test_members_match_ours(self, medium_er):
        for k in (2, 4, 6):
            ours = max_kcore_subgraph(medium_er, k)
            galois = galois_max_kcore(medium_er, k)
            assert np.array_equal(ours.members, galois.members), k

    def test_members_match_reference(self, medium_er):
        kappa = reference_coreness(medium_er)
        for k in (1, 3, 5):
            galois = galois_max_kcore(medium_er, k)
            assert np.array_equal(galois.members, kappa >= k), k

    def test_slower_than_ours_on_dense(self):
        g = power_law_with_hub(
            2000, 6, hub_count=3, hub_degree=800, seed=4
        )
        k = 8  # below the minimum degree nothing peels and neither wins
        ours = max_kcore_subgraph(g, k)
        galois = galois_max_kcore(g, k)
        assert galois.metrics.time_on(96) > ours.metrics.time_on(96)

    def test_label(self, small_er):
        assert galois_max_kcore(small_er, 2).algorithm == "galois"
