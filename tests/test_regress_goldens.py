"""The golden-metrics regression gate: matrix, store, comparators.

The heart of this file is ``test_blessed_goldens_are_current``: it reruns
the full pinned matrix and requires bit-exact agreement with the JSON
files committed under ``goldens/``.  Any change to an algorithm or a cost
constant that moves a number must come with a re-bless (and the diff
review that implies).
"""

from __future__ import annotations

import json

import pytest

from repro.regress import (
    CASES,
    COST_MODELS,
    ENGINES,
    GRAPH_BUILDERS,
    GoldenVersionError,
    diff_run,
    read_golden,
    render_drift_json,
    render_drift_text,
    run_case,
    run_matrix,
    select_cases,
    write_golden,
)
from repro.regress.compare import diff_entries
from repro.regress.matrix import coreness_fingerprint, load_graph
from repro.runtime.cost_model import CostModelOverrides
from repro.runtime.metrics import (
    METRICS_SCHEMA_VERSION,
    STABLE_THREAD_COUNTS,
    RunMetrics,
)


@pytest.fixture(scope="module")
def fresh_matrix():
    """One full matrix run shared by every test in this file."""
    return run_matrix()


class TestMatrix:
    def test_matrix_covers_every_engine_and_graph(self):
        assert {case.engine for case in CASES} == set(ENGINES)
        assert {case.graph for case in CASES} >= set(GRAPH_BUILDERS)

    def test_case_ids_unique(self):
        ids = [case.case_id for case in CASES]
        assert len(ids) == len(set(ids))

    def test_select_cases_filters(self):
        subset = select_cases("grid-24")
        assert subset and all("grid-24" in c.case_id for c in subset)
        assert select_cases(None) == list(CASES)

    def test_matrix_is_deterministic(self, fresh_matrix):
        again = run_matrix()
        assert again == fresh_matrix

    def test_payload_round_trips_through_json(self, fresh_matrix):
        # Exact float round-trip is what lets goldens be compared with ==.
        assert json.loads(json.dumps(fresh_matrix)) == fresh_matrix

    def test_stable_dict_schema(self):
        metrics = RunMetrics()
        stable = metrics.to_stable_dict()
        for threads in STABLE_THREAD_COUNTS:
            assert f"time_p{threads}" in stable
        for key in ("work", "span", "burdened_span", "subrounds"):
            assert key in stable
        assert METRICS_SCHEMA_VERSION == 1

    def test_coreness_fingerprint_discriminates(self):
        import numpy as np

        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([1, 3, 2], dtype=np.int64)
        fa, fb = coreness_fingerprint(a), coreness_fingerprint(b)
        assert fa == coreness_fingerprint(a.copy())
        assert fa["sha256"] != fb["sha256"]
        assert fa["sum"] == fb["sum"] == 6

    def test_load_graph_unknown_name(self):
        with pytest.raises(KeyError, match="unknown regression graph"):
            load_graph("nope")


class TestBlessedGoldens:
    def test_blessed_goldens_are_current(self, fresh_matrix):
        """The committed goldens/ files match a fresh matrix run exactly."""
        blessed = {engine: read_golden(engine) for engine in fresh_matrix}
        report = diff_run(blessed, fresh_matrix)
        assert report.clean, "\n" + render_drift_text(report)
        assert report.cases_checked == len(CASES)


class TestGoldenStore:
    def test_round_trip(self, tmp_path, fresh_matrix):
        engine = "bz"
        path = write_golden(engine, fresh_matrix[engine], tmp_path)
        assert path.parent == tmp_path
        assert read_golden(engine, tmp_path) == fresh_matrix[engine]

    def test_missing_golden_is_none(self, tmp_path):
        assert read_golden("bz", tmp_path) is None

    def test_version_mismatch_raises(self, tmp_path, fresh_matrix):
        path = write_golden("bz", fresh_matrix["bz"], tmp_path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(GoldenVersionError, match="schema_version=999"):
            read_golden("bz", tmp_path)

    def test_golden_header_records_cost_models(self, tmp_path, fresh_matrix):
        path = write_golden("bz", fresh_matrix["bz"], tmp_path)
        payload = json.loads(path.read_text())
        assert set(payload["cost_models"]) == set(COST_MODELS)
        assert payload["cost_models"]["default"]["omega"] == 15_000.0


class TestDriftDetection:
    def test_perturbed_omega_drifts_burdened_span(self, monkeypatch):
        """The acceptance-criteria scenario: changing omega must drift."""
        from repro.regress import matrix as matrix_mod

        case = next(
            c for c in CASES
            if c.case_id == "julienne/grid-24/default"
        )
        before = {case.entry_key: run_case(case)}
        monkeypatch.setitem(
            matrix_mod.COST_MODELS,
            "default",
            CostModelOverrides().with_fields(omega=14_000.0),
        )
        after = {case.entry_key: run_case(case)}
        drifts = diff_entries("julienne", before, after)
        moved = {d.metric for d in drifts}
        assert "metrics.burdened_span" in moved
        span_drift = next(
            d for d in drifts if d.metric == "metrics.burdened_span"
        )
        assert span_drift.new < span_drift.old
        assert span_drift.pct is not None and span_drift.pct < 0

    def test_perturbed_peel_charge_drifts_work(self, monkeypatch):
        from repro.regress import matrix as matrix_mod

        case = next(
            c for c in CASES if c.case_id == "ours-plain/er-300/default"
        )
        before = {case.entry_key: run_case(case)}
        monkeypatch.setitem(
            matrix_mod.COST_MODELS,
            "default",
            CostModelOverrides().with_fields(edge_op=2.0),
        )
        after = {case.entry_key: run_case(case)}
        moved = {
            d.metric for d in diff_entries("ours-plain", before, after)
        }
        assert "metrics.work" in moved
        assert "metrics.time_p1" in moved

    def test_unblessed_and_stale_engines(self, fresh_matrix):
        fresh = {"bz": fresh_matrix["bz"]}
        report = diff_run({"bz": None, "ghost": {"x": {}}}, fresh)
        assert report.unblessed == ["bz"]
        assert report.stale == ["ghost"]
        assert not report.clean

    def test_filtered_run_skips_stale(self, fresh_matrix):
        fresh = {"bz": fresh_matrix["bz"]}
        report = diff_run(
            {"bz": fresh_matrix["bz"], "ghost": {"x": {}}},
            fresh,
            filtered=True,
        )
        assert report.clean

    def test_vanished_case_is_a_drift(self, fresh_matrix):
        entries = dict(fresh_matrix["bz"])
        key, removed = next(iter(entries.items()))
        del entries[key]
        drifts = diff_entries("bz", fresh_matrix["bz"], entries)
        assert drifts and all(d.new is None for d in drifts)


class TestReporters:
    def test_text_report_shows_old_new_and_pct(self, fresh_matrix):
        blessed = {engine: read_golden(engine) for engine in fresh_matrix}
        # Fabricate one drift on top of the clean comparison.
        import copy

        mutated = copy.deepcopy(fresh_matrix)
        entry = next(iter(mutated["bz"].values()))
        entry["metrics"]["work"] = entry["metrics"]["work"] * 2
        report = diff_run(blessed, mutated)
        text = render_drift_text(report)
        assert "DRIFT bz/" in text
        assert "metrics.work" in text and "->" in text and "%" in text

    def test_clean_report_says_ok(self, fresh_matrix):
        blessed = {engine: read_golden(engine) for engine in fresh_matrix}
        text = render_drift_text(diff_run(blessed, fresh_matrix))
        assert text.startswith("OK:")

    def test_json_report_parses(self, fresh_matrix):
        blessed = {engine: read_golden(engine) for engine in fresh_matrix}
        payload = json.loads(
            render_drift_json(diff_run(blessed, fresh_matrix))
        )
        assert payload["clean"] is True
        assert payload["cases_checked"] == len(CASES)
