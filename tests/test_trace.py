"""repro.trace: span tracing on the simulated clock, exporters, CLI.

The two load-bearing suites here are determinism (two traced runs of the
same input produce byte-identical exports) and the observational
guarantee (the blessed regression goldens pass bit-exactly *with an
active tracer attached*, without re-blessing anything).
"""

from __future__ import annotations

import json
import re

import pytest

from repro.bench.cache import DiskCache
from repro.bench.runner import BenchCell, execute, run_cell, trace_path
from repro.core.framework import FrameworkConfig, decompose
from repro.core.parallel_kcore import ParallelKCore
from repro.generators import grid_2d, power_law_with_hub
from repro.regress.goldens import read_golden
from repro.regress.matrix import run_case, select_cases
from repro.runtime.simulator import SimRuntime, active_tracer
from repro.trace import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    collapsed_stacks,
    render_flamegraph,
    render_perfetto,
    render_text,
    to_perfetto,
    tracing,
    write_trace,
)
from repro.trace.cli import default_output, main


def hub_graph():
    """A high-degree-hub graph that exercises the sampling scheme."""
    return power_law_with_hub(500, 4, hub_count=2, hub_degree=120, seed=102)


def traced_run(graph, solver=None, threads: int = 96) -> Tracer:
    tracer = Tracer(threads=threads, label="test")
    solver = solver if solver is not None else ParallelKCore()
    solver.decompose(graph, tracer=tracer)
    tracer.finish()
    return tracer


# ----------------------------------------------------------------------
# Core tracer behavior
# ----------------------------------------------------------------------
class TestTracer:
    def test_absent_by_default(self):
        assert active_tracer() is None
        assert SimRuntime().tracer is None

    def test_tracing_context_installs_and_restores(self):
        tracer = Tracer()
        with tracing(tracer) as installed:
            assert installed is tracer
            assert active_tracer() is tracer
            assert SimRuntime().tracer is tracer
        assert active_tracer() is None

    def test_rounds_and_subrounds_nest(self):
        tracer = traced_run(grid_2d(16, 16))
        assert tracer.attempts == 1
        assert tracer.rounds
        for rnd in tracer.rounds:
            assert rnd.t0 <= rnd.t1
        round_spans = [s for s in tracer.spans if s.kind == "round"]
        sub_spans = [s for s in tracer.spans if s.kind == "subround"]
        assert len(round_spans) == len(tracer.rounds)
        assert len(sub_spans) == sum(r.subrounds for r in tracer.rounds)
        # Every subround sits inside its round's extent.
        by_index = {s.args["index"]: s for s in round_spans if "index" in s.args}
        for sub in sub_spans:
            parent = by_index[sub.args["round"]]
            assert parent.t0 <= sub.t0 <= sub.t1 <= parent.t1

    def test_clock_is_monotone_and_matches_steps(self):
        tracer = traced_run(grid_2d(16, 16))
        prev = 0.0
        for step in tracer.steps:
            assert step.t0 == prev
            assert step.t1 >= step.t0
            prev = step.t1
        assert tracer.clock == prev

    def test_round_k_matches_coreness_levels(self):
        tracer = traced_run(grid_2d(16, 16))
        ks = [r.k for r in tracer.rounds if r.k is not None]
        assert ks == sorted(ks)
        assert 2 in ks  # grid kmax

    def test_telemetry_records_vgc_and_frontier(self):
        tracer = traced_run(grid_2d(24, 24))
        tele = tracer.telemetry()
        peeling = [r for r in tele if r["subrounds"]]
        assert peeling
        assert any(r["absorbed"] for r in peeling)
        assert all(r["peak_frontier"] > 0 for r in peeling)
        assert any(r["kernel_regimes"] for r in peeling)

    def test_sampling_telemetry_on_hub_graph(self):
        tracer = traced_run(hub_graph())
        tele = tracer.telemetry()
        assert sum(r["sample_draws"] for r in tele) > 0
        assert sum(r["resamples"] for r in tele) > 0

    def test_threads_one_clock_equals_work(self):
        graph = grid_2d(12, 12)
        tracer = traced_run(graph, threads=1)
        result = ParallelKCore().decompose(graph)
        assert tracer.clock == result.metrics.work

    def test_finish_is_idempotent(self):
        tracer = traced_run(grid_2d(8, 8))
        spans = len(tracer.spans)
        tracer.finish()
        tracer.finish()
        assert len(tracer.spans) == spans


class TestDeterminism:
    def test_two_traced_runs_export_identically(self):
        graph = grid_2d(20, 20)
        a, b = traced_run(graph), traced_run(graph)
        assert render_perfetto(a) == render_perfetto(b)
        assert render_text(a) == render_text(b)
        assert render_flamegraph(a) == render_flamegraph(b)

    def test_tracing_does_not_perturb_results(self):
        graph = hub_graph()
        plain = ParallelKCore().decompose(graph)
        tracer = Tracer()
        traced = ParallelKCore().decompose(graph, tracer=tracer)
        assert (plain.coreness == traced.coreness).all()
        assert plain.metrics.to_stable_dict() == traced.metrics.to_stable_dict()


class TestGoldensWithTracing:
    """The observational guarantee, checked against the blessed files.

    Runs every grid-24 matrix case (all engines, plus the alternate
    cost models) under a process-wide active tracer and requires the
    payloads to match the committed goldens bit-exactly — tracing on
    must equal tracing off, which the full-matrix goldens test pins.
    """

    @pytest.mark.parametrize(
        "case", select_cases("grid-24"), ids=lambda c: c.case_id
    )
    def test_traced_case_matches_blessed_golden(self, case):
        blessed = read_golden(case.engine)
        assert blessed is not None, f"no golden for {case.engine}"
        with tracing(Tracer(label=case.case_id)) as tracer:
            payload = run_case(case)
        assert payload == blessed[case.entry_key]
        assert tracer.steps  # the tracer actually saw the run


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestPerfettoExport:
    def test_event_schema(self):
        doc = to_perfetto(traced_run(grid_2d(16, 16)))
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in {"X", "i", "C", "M"}
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert "ts" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"
            if event["ph"] == "C":
                assert isinstance(event["args"]["value"], float)

    def test_counter_timestamps_monotone(self):
        doc = to_perfetto(traced_run(hub_graph()))
        last: dict[str, float] = {}
        seen = set()
        for event in doc["traceEvents"]:
            if event["ph"] != "C":
                continue
            name = event["name"]
            seen.add(name)
            assert event["ts"] >= last.get(name, 0.0)
            last[name] = event["ts"]
        assert "frontier" in seen
        assert "contention" in seen

    def test_other_data_versioned(self):
        doc = to_perfetto(traced_run(grid_2d(8, 8)))
        other = doc["otherData"]
        assert other["trace_schema_version"] == TRACE_SCHEMA_VERSION
        assert other["threads"] == 96
        assert other["rounds"] == len(
            [s for s in doc["traceEvents"] if s.get("cat") == "round"]
        )
        assert other["model_signature"]

    def test_render_is_valid_json(self):
        text = render_perfetto(traced_run(grid_2d(8, 8)))
        doc = json.loads(text)
        assert doc["displayTimeUnit"] == "ms"

    def test_host_spans_on_second_pid(self):
        tracer = traced_run(grid_2d(8, 8))
        tracer.host_span("cell", 0.25, max_rss_kb=1024)
        hosts = [
            e
            for e in to_perfetto(tracer)["traceEvents"]
            if e.get("cat") == "host"
        ]
        assert len(hosts) == 1
        assert hosts[0]["pid"] == 2
        assert hosts[0]["dur"] == pytest.approx(0.25e6)

    def test_write_trace(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_trace(traced_run(grid_2d(8, 8)), str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestFlamegraph:
    def test_collapsed_stack_format(self):
        text = render_flamegraph(traced_run(grid_2d(16, 16)))
        lines = text.split("\n")
        assert lines
        for line in lines:
            assert re.fullmatch(r"\S+(;\S+)* \d+", line), line
        assert any(";round_k=2;" in line for line in lines)
        assert any(line.startswith("test;setup;") for line in lines)

    def test_counts_sum_to_simulated_clock(self):
        tracer = traced_run(grid_2d(16, 16))
        total = sum(collapsed_stacks(tracer).values())
        assert total == pytest.approx(tracer.clock, abs=len(tracer.steps))


class TestTextTimeline:
    def test_header_rounds_and_host(self):
        tracer = traced_run(grid_2d(16, 16))
        tracer.host_span("run", 0.125)
        text = render_text(tracer)
        assert f"schema v{TRACE_SCHEMA_VERSION}" in text
        assert "clock:" in text
        assert text.count("round") >= len(tracer.rounds)
        assert "host: run wall=0.125s" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_smoke_writes_trace_and_flame(self, tmp_path, capsys):
        out = tmp_path / "t.trace.json"
        flame = tmp_path / "t.folded"
        code = main(
            [
                "ours",
                "GRID",
                "--tiny",
                "--output",
                str(out),
                "--flame",
                str(flame),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["otherData"]["label"] == "ours/GRID.tiny"
        assert flame.read_text().strip()
        stdout = capsys.readouterr().out
        assert "trace: ours/GRID.tiny" in stdout
        assert "kmax=2" in stdout

    def test_output_dash_prints_json(self, capsys):
        assert main(["julienne", "GRID", "--tiny", "--output", "-"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["otherData"]["trace_schema_version"] == TRACE_SCHEMA_VERSION

    def test_unknown_engine_and_graph(self, capsys):
        assert main(["nope", "GRID"]) == 2
        assert "unknown engine" in capsys.readouterr().err
        assert main(["ours", "NOPE"]) == 2

    def test_default_output_name(self):
        assert default_output("ours", "LJ-S", False) == "ours-LJ-S.trace.json"
        assert default_output("bz", "GRID", True) == "bz-GRID.tiny.trace.json"


# ----------------------------------------------------------------------
# Bench integration
# ----------------------------------------------------------------------
class TestBenchTracing:
    CELL = BenchCell("ours", "GRID", size="tiny")

    def test_run_cell_writes_trace_and_payload_unchanged(self, tmp_path):
        traced = run_cell(self.CELL, trace_dir=str(tmp_path))
        plain = run_cell(self.CELL)
        assert traced["metrics"] == plain["metrics"]
        assert traced["coreness"] == plain["coreness"]
        path = trace_path(self.CELL, str(tmp_path))
        doc = json.loads(open(path).read())
        assert doc["otherData"]["label"] == self.CELL.label
        # The host span carries the measured wall clock of the cell.
        hosts = [
            e for e in doc["traceEvents"] if e.get("cat") == "host"
        ]
        assert len(hosts) == 1

    def test_execute_progress_and_trace_records(self, tmp_path, capsys):
        cache = DiskCache(str(tmp_path / "cache"))
        trace_dir = str(tmp_path / "traces")
        report = execute(
            [self.CELL], cache=cache, trace_dir=trace_dir, progress=True
        )
        err = capsys.readouterr().err
        assert "bench: [1/1] ours/GRID/tiny/vectorized ran" in err
        (record,) = report["cells"]
        assert record["trace"] == trace_path(self.CELL, trace_dir)
        assert json.loads(open(record["trace"]).read())["traceEvents"]

    def test_execute_trace_implies_refresh(self, tmp_path, capsys):
        cache = DiskCache(str(tmp_path / "cache"))
        execute([self.CELL], cache=cache, progress=False)
        report = execute(
            [self.CELL],
            cache=cache,
            trace_dir=str(tmp_path / "traces"),
            progress=False,
        )
        assert report["summary"]["misses"] == 1  # cache bypassed

    def test_execute_cached_progress_line(self, tmp_path, capsys):
        cache = DiskCache(str(tmp_path / "cache"))
        execute([self.CELL], cache=cache, progress=False)
        execute([self.CELL], cache=cache, progress=True)
        assert "cached" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Framework plumbing
# ----------------------------------------------------------------------
class TestFrameworkPlumbing:
    def test_decompose_kwarg_attaches(self):
        tracer = Tracer()
        decompose(grid_2d(8, 8), FrameworkConfig(), tracer=tracer)
        assert tracer.attempts == 1
        assert tracer.steps

    def test_explicit_kwarg_wins_over_active(self):
        explicit = Tracer(label="explicit")
        ambient = Tracer(label="ambient")
        with tracing(ambient):
            decompose(grid_2d(8, 8), FrameworkConfig(), tracer=explicit)
        assert explicit.steps
        assert not ambient.steps

    def test_baseline_engines_trace_via_active_tracer(self):
        from repro.regress.matrix import ENGINES
        from repro.runtime.cost_model import DEFAULT_COST_MODEL

        graph = grid_2d(10, 10)
        for engine in ("julienne", "bz", "park"):
            with tracing(Tracer(label=engine)) as tracer:
                ENGINES[engine](graph, DEFAULT_COST_MODEL)
            assert tracer.steps, engine
