"""Tests for dynamic k-core maintenance, validated against recomputation."""

import numpy as np
import pytest

from repro.core.dynamic import DynamicKCore
from repro.core.verify import reference_coreness
from repro.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
)
from repro.graphs.csr import CSRGraph


def assert_consistent(dyn: DynamicKCore) -> None:
    """The maintained coreness must equal a recompute on the snapshot."""
    expected = reference_coreness(dyn.snapshot())
    assert np.array_equal(dyn.coreness, expected)


class TestBasics:
    def test_initial_coreness(self, small_er):
        dyn = DynamicKCore(small_er)
        assert np.array_equal(
            dyn.coreness, reference_coreness(small_er)
        )

    def test_snapshot_round_trip(self, small_er):
        dyn = DynamicKCore(small_er)
        assert dyn.snapshot() == small_er

    def test_degree_and_has_edge(self, triangle):
        dyn = DynamicKCore(triangle)
        assert dyn.degree(0) == 2
        assert dyn.has_edge(0, 1)
        assert not dyn.has_edge(0, 0)

    def test_out_of_range_rejected(self, triangle):
        dyn = DynamicKCore(triangle)
        with pytest.raises(IndexError):
            dyn.insert_edge(0, 5)
        with pytest.raises(IndexError):
            dyn.delete_edge(-1, 0)

    def test_idempotent_operations(self, triangle):
        dyn = DynamicKCore(triangle)
        assert dyn.insert_edge(0, 1).size == 0  # already present
        assert dyn.insert_edge(1, 1).size == 0  # self loop
        assert dyn.delete_edge(0, 2).size > 0 or True
        assert dyn.delete_edge(0, 2).size == 0  # already gone
        assert_consistent(dyn)


class TestInsertions:
    def test_closing_a_path_into_a_cycle(self):
        dyn = DynamicKCore(path_graph(6))
        risers = dyn.insert_edge(0, 5)
        # Path coreness 1 -> cycle coreness 2, every vertex rises.
        assert risers.size == 6
        assert np.all(dyn.coreness == 2)
        assert_consistent(dyn)

    def test_completing_a_triangle(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        dyn = DynamicKCore(g)
        risers = dyn.insert_edge(0, 2)
        assert sorted(risers.tolist()) == [0, 1, 2]
        assert np.all(dyn.coreness == 2)

    def test_insert_into_empty(self):
        dyn = DynamicKCore(empty_graph(4))
        risers = dyn.insert_edge(0, 1)
        assert sorted(risers.tolist()) == [0, 1]
        assert list(dyn.coreness) == [1, 1, 0, 0]

    def test_pendant_insert_changes_nothing_upstream(self):
        dyn = DynamicKCore(complete_graph(5))
        # Add an isolated vertex's worth of structure: K5 grows a tail.
        g = dyn.snapshot()
        dyn2 = DynamicKCore(
            CSRGraph.from_edges(
                6,
                [(u, v) for u in range(5) for v in range(u + 1, 5)],
            )
        )
        risers = dyn2.insert_edge(0, 5)
        assert risers.size > 0  # vertex 5 rises from 0 to 1
        assert dyn2.coreness[5] == 1
        assert np.all(dyn2.coreness[:5] == 4)
        assert_consistent(dyn2)

    def test_insertion_increases_by_at_most_one(self, medium_er):
        dyn = DynamicKCore(medium_er)
        before = dyn.coreness.copy()
        rng = np.random.default_rng(1)
        for _ in range(30):
            u, v = rng.integers(0, medium_er.n, size=2)
            dyn.insert_edge(int(u), int(v))
            assert np.all(dyn.coreness - before <= 1)
            before = dyn.coreness.copy()
        assert_consistent(dyn)


class TestDeletions:
    def test_breaking_a_cycle(self):
        dyn = DynamicKCore(cycle_graph(6))
        dropped = dyn.delete_edge(0, 1)
        assert dropped.size == 6  # cycle -> path, all drop to 1
        assert np.all(dyn.coreness == 1)
        assert_consistent(dyn)

    def test_removing_clique_edge(self):
        dyn = DynamicKCore(complete_graph(5))
        dropped = dyn.delete_edge(0, 1)
        # K5 minus one edge: endpoints drop to 3, others stay 3 (their
        # coreness also falls since the 4-core is destroyed).
        assert_consistent(dyn)
        assert dyn.coreness.max() == 3

    def test_deletion_decreases_by_at_most_one(self, medium_er):
        dyn = DynamicKCore(medium_er)
        rng = np.random.default_rng(2)
        edges = [
            (u, int(x))
            for u in range(medium_er.n)
            for x in medium_er.neighbors(u)
            if u < x
        ]
        rng.shuffle(edges)
        before = dyn.coreness.copy()
        for u, v in edges[:30]:
            dyn.delete_edge(u, v)
            assert np.all(before - dyn.coreness <= 1)
            before = dyn.coreness.copy()
        assert_consistent(dyn)

    def test_grid_boundary_deletions(self):
        dyn = DynamicKCore(grid_2d(5, 5))
        dyn.delete_edge(0, 1)
        dyn.delete_edge(0, 5)  # vertex 0 is now isolated
        assert dyn.coreness[0] == 0
        assert_consistent(dyn)


class TestRandomizedSequences:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_updates_stay_exact(self, seed):
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(60, 4.0, seed=seed)
        dyn = DynamicKCore(graph)
        for step in range(120):
            u, v = (int(x) for x in rng.integers(0, graph.n, size=2))
            if rng.random() < 0.5:
                dyn.insert_edge(u, v)
            else:
                dyn.delete_edge(u, v)
            if step % 10 == 9:
                assert_consistent(dyn)
        assert_consistent(dyn)

    def test_batch_update(self):
        graph = erdos_renyi(50, 3.0, seed=9)
        dyn = DynamicKCore(graph)
        dyn.batch_update(
            insertions=[(0, 1), (1, 2), (2, 0), (3, 4)],
            deletions=[(0, 1)] if dyn.has_edge(0, 1) else [],
        )
        assert_consistent(dyn)

    def test_insert_then_delete_is_identity(self, medium_er):
        dyn = DynamicKCore(medium_er)
        before = dyn.coreness.copy()
        pairs = [(1, 400), (7, 333), (20, 21)]
        for u, v in pairs:
            if not dyn.has_edge(u, v):
                dyn.insert_edge(u, v)
                dyn.delete_edge(u, v)
        assert np.array_equal(dyn.coreness, before)

    def test_touched_counter_grows(self, small_er):
        dyn = DynamicKCore(small_er)
        dyn.insert_edge(0, 1) if not dyn.has_edge(0, 1) else None
        dyn.insert_edge(0, 2) if not dyn.has_edge(0, 2) else None
        assert dyn.updates >= 1


class TestStatefulAgainstRecompute:
    """Hypothesis stateful machine: DynamicKCore vs full recomputation."""

    def test_state_machine(self):
        import hypothesis.strategies as st
        from hypothesis.stateful import (
            RuleBasedStateMachine,
            invariant,
            rule,
            run_state_machine_as_test,
        )
        from hypothesis import settings

        N = 24

        class DynMachine(RuleBasedStateMachine):
            def __init__(self):
                super().__init__()
                self.dyn = DynamicKCore(empty_graph(N))
                self.checks = 0

            @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
            def insert(self, u, v):
                self.dyn.insert_edge(u, v)

            @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
            def delete(self, u, v):
                self.dyn.delete_edge(u, v)

            @invariant()
            def matches_recompute(self):
                expected = reference_coreness(self.dyn.snapshot())
                assert np.array_equal(self.dyn.coreness, expected)

        run_state_machine_as_test(
            DynMachine,
            settings=settings(max_examples=25, deadline=None,
                              stateful_step_count=30),
        )
