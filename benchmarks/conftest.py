"""Shared fixtures for the benchmark suite.

Benchmarks regenerate the paper's tables and figures.  Heavyweight runs
are shared through a session-scoped :class:`ExperimentCache`, and every
bench both prints its paper-shaped output and appends it to
``benchmark_results/`` so EXPERIMENTS.md can be refreshed from one run.

Benchmark sessions default to the :mod:`repro.bench` disk cache
(``REPRO_BENCH_CACHE``), so a re-run after an interrupted sweep — or
after ``make bench`` populated the cache — skips completed runs.  The
cache key pins the cost-model signature, size mode and metrics schema,
so stale hits are impossible; set ``REPRO_BENCH_CACHE=`` (empty) to
force recomputation.
"""

from __future__ import annotations

import os

import pytest

# Opt benchmark sessions into the disk cache unless the caller already
# decided (must happen before ExperimentCache instances are built).
os.environ.setdefault("REPRO_BENCH_CACHE", "1")

from repro.analysis import ExperimentCache

_RESULTS_BASE = "benchmark_results"
if os.environ.get("REPRO_SUITE_TINY"):
    # Tiny-suite smoke runs must never clobber the real paper-shaped
    # outputs that EXPERIMENTS.md is refreshed from.
    _RESULTS_BASE = "benchmark_results_tiny"

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", _RESULTS_BASE)


@pytest.fixture(scope="session")
def cache() -> ExperimentCache:
    """One shared run cache across all benchmark files."""
    return ExperimentCache()


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table/series and persist it for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def table3_data():
    """Table 3 raw data, shared between the Table 3 and Fig. 13 benches."""
    from repro.analysis import table3

    holder: dict[str, dict] = {}

    def _get() -> dict:
        if "data" not in holder:
            holder["data"] = table3()
        return holder["data"]

    return _get
