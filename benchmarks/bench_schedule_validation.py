"""Validation bench: the W/P + S bound against actual greedy scheduling.

The entire simulated-time substitution rests on pricing each parallel
step with ``max(work/P, span)``.  This bench re-runs the flagship
algorithm with per-task recording and replaces the bound with an actual
greedy list schedule of every step's task multiset (Graham's guarantee:
within ``(1 - 1/P) * max_task`` of optimal), showing the two agree.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.peel_online import OnlinePeel
from repro.core.state import PeelState
from repro.generators import suite
from repro.runtime.cost_model import nanos_to_millis
from repro.runtime.list_schedule import scheduled_time_on
from repro.runtime.simulator import SimRuntime
from repro.structures.single_bucket import SingleBucket

GRAPHS = ("LJ-S", "AF-S", "GL5-S", "SD-S")


def run_with_tasks(name: str):
    graph = suite.load(name)
    runtime = SimRuntime(record_task_costs=True)
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(graph.n, dtype=bool)
    coreness = np.zeros(graph.n, dtype=np.int64)
    buckets = SingleBucket()
    buckets.build(graph, dtilde, peeled, runtime)
    peel = OnlinePeel()
    state = PeelState(
        graph=graph, dtilde=dtilde, peeled=peeled, coreness=coreness,
        runtime=runtime, buckets=buckets,
    )
    while True:
        step = buckets.next_round()
        if step is None:
            break
        k, frontier = step
        while frontier.size:
            coreness[frontier] = k
            peeled[frontier] = True
            frontier = peel.subround(state, frontier, k)
    return runtime.metrics


def sweep():
    rows = []
    for name in GRAPHS:
        metrics = run_with_tasks(name)
        modeled = nanos_to_millis(metrics.time_on(96))
        scheduled = nanos_to_millis(scheduled_time_on(metrics, 96))
        rows.append([name, modeled, scheduled, scheduled / modeled])
    return rows


def _render(rows) -> str:
    return render_table(
        ("graph", "modeled (ms)", "scheduled (ms)", "ratio"),
        rows,
        title="Time-model validation: W/P + S bound vs greedy schedule",
    )


def test_schedule_validation(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("schedule_validation", _render(rows))

    for name, modeled, scheduled, ratio in rows:
        # The modeled bound and the realized schedule agree closely.
        assert 0.6 <= ratio <= 1.2, (name, ratio)


if __name__ == "__main__":
    print(_render(sweep()))
