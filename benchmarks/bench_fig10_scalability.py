"""Fig. 10: self-relative speedup versus thread count.

Paper shape: near-linear scaling into tens of cores, larger graphs scale
further, and the hyperthreaded point ("96h" = 192 threads) adds a
sub-linear extra gain.
"""

from __future__ import annotations

from repro.analysis import fig10_scalability, render_table
from repro.runtime.scheduler import SCALABILITY_THREADS

#: Two dense and two sparse graphs, mirroring the paper's two panels.
GRAPHS = ("LJ-S", "TW-S", "GRID", "EU-S")


def _render(data: dict) -> str:
    rows = []
    for name, curve in data.items():
        rows.append([name] + [speedup for _, speedup in curve])
    headers = ("graph",) + tuple(
        "96h" if t == 192 else str(t) for t in SCALABILITY_THREADS
    )
    return render_table(
        headers, rows,
        title="Fig. 10: self-relative speedup vs thread count",
    )


def test_fig10_scalability(benchmark, emit):
    data = benchmark.pedantic(
        lambda: fig10_scalability(GRAPHS), rounds=1, iterations=1
    )
    emit("fig10_scalability", _render(data))

    for name, curve in data.items():
        speedups = [s for _, s in curve]
        # Monotone non-decreasing in the thread count.
        assert all(b >= a * 0.999 for a, b in zip(speedups, speedups[1:])), name
        # Meaningful parallelism at 96 threads.
        at96 = dict(curve)[96]
        assert at96 > 3, (name, at96)
        # Hyperthreading ("96h") helps, sub-linearly.
        at192 = dict(curve)[192]
        assert at96 <= at192 < 2 * at96, name


if __name__ == "__main__":
    print(_render(fig10_scalability(GRAPHS)))
