"""Fig. 8: bucketing strategies (1-bucket / 16-bucket / HBS), normalized.

Paper shape: the adaptive HBS matches the better of {1, 16} on every graph
and is strictly better on the extremes (HCNS, very dense graphs); using 16
buckets costs 20-70% on sparse graphs, using 1 bucket costs much more on
high-coreness graphs.
"""

from __future__ import annotations

from repro.analysis import fig8_bucketing, render_table


def _render(data: dict) -> str:
    rows = [
        [name, row["1-bucket"], row["16-bucket"], row["hbs"]]
        for name, row in data.items()
    ]
    return render_table(
        ("graph", "1-bucket", "16-bucket", "HBS"),
        rows,
        title="Fig. 8: time relative to HBS (lower is better; HBS = 1.0)",
    )


def test_fig8_bucketing(benchmark, emit):
    data = benchmark.pedantic(fig8_bucketing, rounds=1, iterations=1)
    emit("fig8_bucketing", _render(data))

    # HBS is within a modest tolerance of the best strategy on every graph
    # (values are normalized to HBS, so this says best >= 1 / 1.5).  The
    # 1.5 bound absorbs a scale artifact on the k-NN k=10 graph where the
    # fixed 16-bucket layout edges out the adaptive structure (see
    # EXPERIMENTS.md); the paper observes near-parity there.
    for name, row in data.items():
        best = min(row.values())
        assert row["hbs"] <= 1.5 * best, name
    # And clearly ahead of the single bucket on the high-coreness case.
    assert data["HCNS"]["1-bucket"] > 1.1


if __name__ == "__main__":
    print(_render(fig8_bucketing()))
