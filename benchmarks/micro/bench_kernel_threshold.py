"""Micro-benchmark behind ``DEFAULT_KERNEL_THRESHOLD``.

The flat NumPy VGC kernel processes a queue item's adjacency list one of
two ways: a scalar Python loop (cheap for short lists — no array-slicing
overhead) or a vectorized expansion (cheap for long lists — the per-edge
work amortizes the slicing).  ``REPRO_KERNEL_THRESHOLD`` is the degree at
which the kernel switches from the first to the second.

This script sweeps candidate thresholds over a scalar-heavy sparse graph
(road: average degree ~2.5), a vector-heavy dense graph (BA: hubs) and a
mixed one, running the flagship engine cold under ``REPRO_KERNELS=
vectorized`` each time, and writes ``kernel_threshold.json`` next to
itself: the evidence for the committed default.  Re-run with::

    PYTHONPATH=src python benchmarks/micro/bench_kernel_threshold.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

os.environ["REPRO_KERNELS"] = "vectorized"

from repro.generators import suite  # noqa: E402  (after env setup)
from repro.perf import THRESHOLD_ENV  # noqa: E402
from repro.regress.matrix import ENGINES  # noqa: E402
from repro.runtime.cost_model import DEFAULT_COST_MODEL  # noqa: E402

THRESHOLDS = (0, 8, 16, 32, 64, 128, 1 << 30)
GRAPHS = ("EU-S", "LJ-S", "HPL")
ENGINE = "ours"
REPEATS = 3


def time_run(graph) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        ENGINES[ENGINE](graph, DEFAULT_COST_MODEL)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    graphs = {name: suite.load(name, size="full") for name in GRAPHS}
    table: dict[str, dict[str, float]] = {}
    totals: dict[int, float] = {}
    for threshold in THRESHOLDS:
        os.environ[THRESHOLD_ENV] = str(threshold)
        total = 0.0
        for name, graph in graphs.items():
            wall = time_run(graph)
            table.setdefault(name, {})[str(threshold)] = round(wall, 5)
            total += wall
        totals[threshold] = round(total, 5)
        print(f"threshold {threshold:>10}: {totals[threshold]:.3f}s")
    os.environ.pop(THRESHOLD_ENV, None)
    best = min(totals, key=lambda t: totals[t])
    out = {
        "engine": ENGINE,
        "kernels": "vectorized",
        "repeats": REPEATS,
        "per_graph_wall_s": table,
        "total_wall_s": {str(t): w for t, w in totals.items()},
        "best_threshold": best,
        "note": (
            "0 = always vectorize, 2**30 = always scalar; "
            "DEFAULT_KERNEL_THRESHOLD in repro.perf pins the winner"
        ),
    }
    path = Path(__file__).with_name("kernel_threshold.json")
    path.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"best threshold: {best}; wrote {path}")


if __name__ == "__main__":
    main()
