"""Fig. 15: running-time speedup over Julienne, with and without VGC.

Paper shape: the time speedups track the burdened-span speedups of Fig. 9
— the graphs with the largest VGC burdened-span gains (TRCE, BBL, GRID)
also show the largest time gains, confirming that synchronization
overhead is what separates the algorithms.
"""

from __future__ import annotations

from repro.analysis import (
    fig9_burdened_span,
    fig15_time_vs_julienne,
    render_table,
)


def _render(data: dict) -> str:
    rows = [
        [name, no_vgc, with_vgc]
        for name, (no_vgc, with_vgc) in data.items()
    ]
    return render_table(
        ("graph", "ours (no VGC)", "ours (VGC)"),
        rows,
        title="Fig. 15: running-time speedup over Julienne (higher is better)",
    )


def test_fig15_time_vs_julienne(benchmark, emit):
    data = benchmark.pedantic(
        fig15_time_vs_julienne, rounds=1, iterations=1
    )
    emit("fig15_time_vs_julienne", _render(data))

    # VGC's time gains land on the same graphs as its span gains.
    span = fig9_burdened_span(graph_names=("GRID", "TRCE-S", "LJ-S"))
    for name in ("GRID", "TRCE-S"):
        assert data[name][1] > data[name][0], name  # VGC helps the time
        assert span[name][1] > span[name][0], name  # and the span
    # Ours with VGC beats Julienne everywhere.
    for name, (_, with_vgc) in data.items():
        assert with_vgc > 1.0, name


if __name__ == "__main__":
    print(_render(fig15_time_vs_julienne()))
