"""Ablation: VGC local-queue size sweep.

Paper claim (Sec. 4.2): "performance remains relatively stable across
queue sizes ranging from hundreds to thousands"; the implementation fixes
128.  We sweep the queue budget on the sparse adversaries and check the
plateau — and that a queue of 1 (no absorption) degenerates to the plain
subround count.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core.parallel_kcore import ParallelKCore
from repro.generators import suite
from repro.runtime.cost_model import nanos_to_millis

QUEUE_SIZES = (1, 8, 32, 128, 512, 2048)
GRAPHS = ("GRID", "AF-S", "TRCE-S")


def sweep() -> dict[str, list[tuple[int, float, int]]]:
    out: dict[str, list[tuple[int, float, int]]] = {}
    for name in GRAPHS:
        graph = suite.load(name)
        series = []
        for q in QUEUE_SIZES:
            solver = ParallelKCore(
                sampling=False, vgc=True, buckets="1", queue_size=q
            )
            result = solver.decompose(graph)
            series.append(
                (q, nanos_to_millis(result.time_on(96)), result.rho)
            )
        out[name] = series
    return out


def _render(data: dict) -> str:
    rows = []
    for name, series in data.items():
        for q, ms, rho in series:
            rows.append([name, q, ms, rho])
    return render_table(
        ("graph", "queue", "t96 (ms)", "rho'"),
        rows,
        title="Ablation: VGC queue-size sweep",
    )


def test_ablation_queue_size(benchmark, emit):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_queue_size", _render(data))

    for name, series in data.items():
        times = {q: ms for q, ms, _ in series}
        rhos = {q: rho for q, _, rho in series}
        # Hundreds-to-thousands plateau: 128 within 40% of 2048.
        assert times[128] <= 1.4 * times[2048], name
        assert times[512] <= 1.4 * times[128], name
        # Queue of 1 cannot absorb chains: many more subrounds.
        assert rhos[1] > rhos[128], name
        # Larger queues never increase the subround count.
        assert rhos[2048] <= rhos[8], name


if __name__ == "__main__":
    print(_render(sweep()))
