"""Figs. 9 / 14: burdened-span speedup over Julienne, with and without VGC.

Paper shape: even without VGC the online peel beats Julienne's burdened
span by a constant factor (fewer synchronizations per subround); VGC
multiplies the gap on sparse graphs (up to ~150x in the paper).
"""

from __future__ import annotations

from repro.analysis import fig9_burdened_span, render_table


def _render(data: dict) -> str:
    rows = [
        [name, no_vgc, with_vgc]
        for name, (no_vgc, with_vgc) in data.items()
    ]
    return render_table(
        ("graph", "ours (no VGC)", "ours (VGC)"),
        rows,
        title=(
            "Fig. 9: burdened-span speedup over Julienne "
            "(1.0 = Julienne; higher is better)"
        ),
    )


def test_fig9_burdened_span(benchmark, emit):
    data = benchmark.pedantic(fig9_burdened_span, rounds=1, iterations=1)
    emit("fig9_burdened_span", _render(data))

    for name, (no_vgc, with_vgc) in data.items():
        # The online peel never has a worse burdened span than Julienne...
        assert no_vgc >= 0.9, name
        # ...and VGC only improves it.
        assert with_vgc >= no_vgc * 0.95, name
    # Large VGC gains on the sparse adversaries (paper: up to ~147x; the
    # scaled graphs compress the factors but keep GRID far in front).
    assert data["GRID"][1] > 10.0
    for name in ("TRCE-S", "BBL-S"):
        assert data[name][1] > 3.0, name


if __name__ == "__main__":
    print(_render(fig9_burdened_span()))
