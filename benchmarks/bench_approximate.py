"""Extension bench: approximate decomposition accuracy/cost tradeoff.

Sweeps eps on dense and sparse graphs and reports the subround reduction
(geometric phases instead of one round per coreness value) against the
realized estimation error — the tradeoff the approximate-k-core line of
work (paper Sec. 7) trades on.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core.approximate import approximate_coreness
from repro.core.parallel_kcore import ParallelKCore
from repro.core.verify import reference_coreness
from repro.generators import suite
from repro.runtime.cost_model import nanos_to_millis

GRAPHS = ("SD-S", "HCNS", "GRID")
EPS_VALUES = (0.1, 0.5, 1.0)


def sweep():
    rows = []
    for name in GRAPHS:
        graph = suite.load(name)
        exact_result = ParallelKCore().decompose(graph)
        exact = reference_coreness(graph)
        nonzero = exact > 0
        for eps in EPS_VALUES:
            approx = approximate_coreness(graph, eps=eps)
            err = (
                approx.coreness[nonzero] / exact[nonzero]
            )
            rows.append(
                [
                    name,
                    eps,
                    exact_result.rho,
                    approx.rho,
                    float(err.max()) if err.size else 1.0,
                    nanos_to_millis(approx.time_on(96)),
                ]
            )
    return rows


def _render(rows) -> str:
    return render_table(
        ("graph", "eps", "rho exact", "rho approx", "max est/exact",
         "t96 (ms)"),
        rows,
        title="Approximate decomposition: phases vs accuracy",
    )


def test_approximate(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("approximate", _render(rows))

    for name, eps, rho_exact, rho_approx, max_ratio, _ in rows:
        # Guarantee holds with slack for integer rounding.
        assert max_ratio < 1 + eps + 1e-9, (name, eps)
    # On the high-coreness adversary the subround savings are massive.
    hcns_rows = [r for r in rows if r[0] == "HCNS"]
    for _, eps, rho_exact, rho_approx, _, _ in hcns_rows:
        assert rho_approx < rho_exact / 5, eps


if __name__ == "__main__":
    print(_render(sweep()))
