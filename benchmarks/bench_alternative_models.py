"""Extension bench: alternative computation models for k-core.

Compares the paper's shared-memory peeling against the two classic
alternative regimes its related work cites: the distributed-style
H-index iteration (rounds of purely local updates, ref [58]) and the
semi-external streaming algorithm (one edge-file pass per round,
refs [15, 39, 75]).  The interesting quantity is the *round count*:
all three models need information to travel across the graph, so the
grid's O(sqrt(n)) waves afflict every one of them — evidence that the
paper's scheduling problem is intrinsic to the dependence structure,
and VGC attacks the per-round cost rather than the round count.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.external import semi_external_coreness, write_edge_file
from repro.core.locality import hindex_coreness
from repro.core.parallel_kcore import ParallelKCore
from repro.core.verify import reference_coreness
from repro.generators import suite

GRAPHS = ("LJ-S", "AF-S", "GL5-S", "GRID")


def sweep(tmp_dir: str = "benchmark_results"):
    import os
    import tempfile

    rows = []
    with tempfile.TemporaryDirectory() as scratch:
        for name in GRAPHS:
            graph = suite.load(name)
            ref = reference_coreness(graph)

            peel = ParallelKCore.plain().decompose(graph)
            assert np.array_equal(peel.coreness, ref)

            hindex = hindex_coreness(graph)
            assert np.array_equal(hindex.coreness, ref)

            path = os.path.join(scratch, f"{name}.bin")
            write_edge_file(graph, path)
            external = semi_external_coreness(path, graph.n)
            assert np.array_equal(external.coreness, ref)

            rows.append(
                [
                    name,
                    peel.rho,
                    hindex.metrics.rounds,
                    external.passes,
                ]
            )
    return rows


def _render(rows) -> str:
    return render_table(
        ("graph", "peeling subrounds", "H-index rounds",
         "streaming passes"),
        rows,
        title="Alternative models: synchronization/IO rounds to exactness",
    )


def test_alternative_models(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("alternative_models", _render(rows))

    by_name = {row[0]: row for row in rows}
    for name, rho, hindex_rounds, passes in rows:
        # Convergence rounds never exceed the peeling complexity by more
        # than the final confirming pass: an H-index round lowers every
        # vertex that a peeling subround would have removed.
        assert hindex_rounds <= rho + 1, name
        assert passes <= rho + 2, name
        assert passes >= 2
    # On the grid, information travels one hop per round in EVERY model:
    # the locality iteration inherits the O(sqrt(n)) rounds, showing the
    # alternative models do not rescue the scheduling problem VGC solves.
    assert by_name["GRID"][2] >= by_name["GRID"][1] - 1


if __name__ == "__main__":
    print(_render(sweep()))
