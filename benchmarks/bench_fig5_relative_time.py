"""Fig. 5: baseline running time normalized to ours, all graphs.

Paper shape: the red dotted line at 1.0 is our algorithm; every baseline
shows multi-x slowdowns on its adversarial family, and the worst cases
differ per baseline.
"""

from __future__ import annotations

from repro.analysis import fig5_relative_time, geometric_mean, render_table


def _render(data: dict) -> str:
    rows = [
        [name] + [data[name][a] for a in ("julienne", "park", "pkc")]
        for name in data
    ]
    rows.append(
        ["geomean"]
        + [
            geometric_mean([data[g][a] for g in data])
            for a in ("julienne", "park", "pkc")
        ]
    )
    return render_table(
        ("graph", "julienne", "park", "pkc"),
        rows,
        title="Fig. 5: baseline time / our time (1.0 = ours; higher = worse)",
    )


def test_fig5_relative_time(benchmark, cache, emit):
    data = benchmark.pedantic(
        lambda: fig5_relative_time(cache=cache), rounds=1, iterations=1
    )
    emit("fig5_relative_time", _render(data))

    # On geometric mean, ours is the fastest algorithm.
    for baseline in ("julienne", "park", "pkc"):
        gm = geometric_mean([data[g][baseline] for g in data])
        assert gm > 1.0, baseline
    # Baseline-specific worst cases, as in the paper.
    assert data["GRID"]["julienne"] > 4.0  # offline collapses on grids
    assert data["TW-S"]["park"] > 2.0  # contention hurts ParK on hubs
    assert data["TW-S"]["pkc"] > 1.5


if __name__ == "__main__":
    print(_render(fig5_relative_time()))
