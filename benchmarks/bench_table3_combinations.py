"""Table 3 / Fig. 13: all eight technique combinations on all graphs.

Paper shape: no single technique dominates; each adversarial graph needs
a specific combination (HCNS wants HBS without sampling; GRID wants VGC;
TW wants sampling; SD wants VGC+sampling), and "All" is at or near the
best on the non-adversarial graphs.
"""

from __future__ import annotations

from repro.analysis import normalize_row, render_table3


def test_table3_combinations(benchmark, emit, table3_data):
    data = benchmark.pedantic(table3_data, rounds=1, iterations=1)
    emit("table3_combinations", render_table3(data))

    norm = {g: normalize_row(row) for g, row in data.items()}
    # "All" is within 2x of the per-graph best everywhere but the
    # designated adversaries, and usually within 25%.
    close = sum(1 for g in norm if norm[g]["All"] <= 1.25)
    assert close >= len(norm) * 0.6, close
    for g in norm:
        if g == "HCNS":
            continue
        assert norm[g]["All"] <= 2.0, g
    # Technique-specific winners, as in the paper's heatmap:
    assert norm["GRID"]["VGC"] < norm["GRID"]["Sample"]  # VGC graph
    assert norm["TW-S"]["Sample"] < norm["TW-S"]["VGC"]  # sampling graph
    assert norm["HCNS"]["HBS"] < norm["HCNS"]["Plain"]  # HBS graph
    assert norm["HCNS"]["HBS"] < norm["HCNS"]["Sample"]


if __name__ == "__main__":
    from repro.analysis import table3

    print(render_table3(table3()))
