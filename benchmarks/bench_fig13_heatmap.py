"""Fig. 13: heatmap view of the Table 3 combination data.

Same data as Table 3 (shared through a session fixture), rendered as a
coarse character heatmap: '#' = at the per-graph best, progressively
lighter glyphs for slower combinations — the textual analogue of the
paper's green-to-red gradient.
"""

from __future__ import annotations

from repro.analysis import TABLE3_COLUMNS, normalize_row

#: Relative-time thresholds for the heat glyphs.
GLYPHS = ((1.05, "#"), (1.5, "+"), (3.0, "-"), (10.0, "."), (float("inf"), " "))


def _glyph(value: float) -> str:
    for bound, glyph in GLYPHS:
        if value <= bound:
            return glyph
    return " "


def render_heatmap(data: dict) -> str:
    width = max(len(g) for g in data)
    lines = [
        "Fig. 13: combination heatmap ('#' = best, ' ' = >10x slower)",
        " " * (width + 2)
        + " ".join(c[:7].center(7) for c in TABLE3_COLUMNS),
    ]
    for graph, row in data.items():
        norm = normalize_row(row)
        cells = " ".join(
            _glyph(norm[c]).center(7) for c in TABLE3_COLUMNS
        )
        lines.append(f"{graph.ljust(width)}  {cells}")
    return "\n".join(lines)


def test_fig13_heatmap(benchmark, emit, table3_data):
    data = benchmark.pedantic(table3_data, rounds=1, iterations=1)
    emit("fig13_heatmap", render_heatmap(data))

    # Every graph has at least one '#' (its best combination) and every
    # combination column is best somewhere or at least competitive.
    norm = {g: normalize_row(row) for g, row in data.items()}
    for g in norm:
        assert any(norm[g][c] <= 1.05 for c in TABLE3_COLUMNS), g


if __name__ == "__main__":
    from repro.analysis import table3

    print(render_heatmap(table3()))
