"""Extension bench: bucketing strategies on a second decomposition.

The paper claims its bucketing structures are of independent interest
for other peeling problems (Sec. 5.1, citing clique/nucleus peeling).
This bench re-runs the Fig. 8 comparison — one bucket vs 16 buckets vs
HBS — on *k-truss* peeling, where elements are edges and keys are
triangle supports, checking that the structure ranking carries over.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.truss import truss_decomposition
from repro.core.truss_parallel import truss_decomposition_bucketed
from repro.generators import suite
from repro.runtime.cost_model import nanos_to_millis

GRAPHS = ("LJ-S", "OK-S", "CH5-S")
STRATEGIES = ("1", "16", "hbs")


def sweep():
    rows = []
    for name in GRAPHS:
        graph = suite.load(name)
        seq_edges, seq_truss = truss_decomposition(graph)
        times = {}
        for strategy in STRATEGIES:
            edges, result = truss_decomposition_bucketed(
                graph, buckets=strategy
            )
            assert np.array_equal(result.coreness + 2, seq_truss), (
                name, strategy,
            )
            times[strategy] = nanos_to_millis(result.time_on(96))
        rows.append(
            [name, times["1"], times["16"], times["hbs"],
             times["1"] / times["hbs"]]
        )
    return rows


def _render(rows) -> str:
    return render_table(
        ("graph", "1-bucket (ms)", "16-bucket (ms)", "HBS (ms)",
         "1-bucket/HBS"),
        rows,
        title="Bucketing strategies on k-truss peeling "
        "(exactness asserted against the sequential algorithm)",
    )


def test_truss_bucketing(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("truss_bucketing", _render(rows))

    for name, one, sixteen, hbs, ratio in rows:
        # HBS is never far behind the best strategy on the truss either.
        best = min(one, sixteen, hbs)
        assert hbs <= 1.5 * best, name


if __name__ == "__main__":
    print(_render(sweep()))
