"""Fig. 2: speedup over the best sequential time, representative graphs.

Paper shape: every baseline drops below 1x (slower than sequential) on
some graph — Julienne on GRID, ParK/PKC on hub graphs — while our
algorithm stays above 1x everywhere.
"""

from __future__ import annotations

from repro.analysis import fig2_seq_speedup, render_table
from repro.generators import REPRESENTATIVE


def _render(data: dict) -> str:
    rows = [
        [name] + [data[name][a] for a in ("ours", "julienne", "park", "pkc")]
        for name in data
    ]
    return render_table(
        ("graph", "ours", "julienne", "park", "pkc"),
        rows,
        title="Fig. 2: speedup over best sequential (higher is better)",
    )


def test_fig2_seq_speedup(benchmark, cache, emit):
    data = benchmark.pedantic(
        lambda: fig2_seq_speedup(cache=cache), rounds=1, iterations=1
    )
    emit("fig2_seq_speedup", _render(data))

    # Ours is never slower than sequential on the representative set.
    for name in REPRESENTATIVE:
        assert data[name]["ours"] > 0.9, name
    # Each baseline has at least one sub-sequential graph.
    for baseline in ("julienne", "park", "pkc"):
        assert any(
            data[name][baseline] < 1.0 for name in REPRESENTATIVE
        ), baseline


if __name__ == "__main__":
    print(_render(fig2_seq_speedup()))
