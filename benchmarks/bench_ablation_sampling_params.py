"""Ablation: sampling parameters (resample factor r, sample target mu).

The paper fixes r = 10% and mu = 4(c+2) ln n.  This sweep shows the
tradeoff both parameters control: small r defers resampling (fewer exact
recounts, staler estimates), large mu tightens the estimates (more
counter contention); the defaults sit on the plateau.  Correctness must
hold at *every* setting — the Las-Vegas machinery guarantees it.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.sampling import SamplingConfig
from repro.core.parallel_kcore import ParallelKCore
from repro.core.verify import reference_coreness
from repro.generators import suite
from repro.runtime.cost_model import nanos_to_millis

R_VALUES = (0.02, 0.1, 0.3, 0.6)
MU_VALUES = (16, 64, 128, 512)


def sweep(graph_name: str = "TW-S"):
    graph = suite.load(graph_name)
    reference = reference_coreness(graph)
    rows = []
    for r in R_VALUES:
        for mu in MU_VALUES:
            solver = ParallelKCore(
                sampling=True,
                vgc=True,
                buckets="adaptive",
                sampling_config=SamplingConfig(r=r, mu=mu),
            )
            result = solver.decompose(graph)
            assert np.array_equal(result.coreness, reference), (r, mu)
            rows.append(
                (
                    r,
                    mu,
                    nanos_to_millis(result.time_on(96)),
                    result.metrics.max_contention,
                    result.metrics.resamples,
                )
            )
    return rows


def _render(rows) -> str:
    return render_table(
        ("r", "mu", "t96 (ms)", "max contention", "resamples"),
        [list(row) for row in rows],
        title="Ablation: sampling parameter sweep on TW-S "
        "(correct at every setting)",
    )


def test_ablation_sampling_params(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_sampling_params", _render(rows))

    by_params = {(r, mu): t for r, mu, t, _, _ in rows}
    contention = {(r, mu): c for r, mu, _, c, _ in rows}
    resamples = {(r, mu): n for r, mu, _, _, n in rows}
    # Larger mu -> more sampler hits on one counter -> more contention.
    assert contention[(0.1, 512)] >= contention[(0.1, 16)]
    # Smaller r -> resample later -> fewer recounts.
    assert resamples[(0.02, 64)] <= resamples[(0.6, 64)]
    # The paper's defaults are within 50% of the best sweep point.
    default_like = by_params[(0.1, 128)]
    best = min(by_params.values())
    assert default_like <= 1.5 * best


if __name__ == "__main__":
    print(_render(sweep()))
