"""Extension bench: D-core decomposition of a directed web-like graph.

Sweeps the (k, l) grid of in/out-degree constraints and prints the
D-core size matrix — the directed decomposition surface the paper's
related work (Giatsidis et al.; Luo et al. 2024) studies.  Asserts the
defining monotonicity: cores shrink in both k and l.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core.dcore import dcore_in_decomposition, dcore_subgraph
from repro.graphs.digraph import random_digraph

K_VALUES = (0, 1, 2, 3, 4)
L_VALUES = (0, 1, 2, 3, 4)


def sweep():
    digraph = random_digraph(4000, 6.0, seed=17, name="web-digraph")
    matrix = {}
    for k in K_VALUES:
        for l in L_VALUES:
            matrix[(k, l)] = int(dcore_subgraph(digraph, k, l).sum())
    # Consistency: the fixed-l decomposition slices must agree.
    for l in (0, 2):
        values = dcore_in_decomposition(digraph, l)
        for k in K_VALUES:
            assert int((values >= k).sum()) == matrix[(k, l)], (k, l)
    return digraph.n, matrix


def _render(n, matrix) -> str:
    rows = []
    for k in K_VALUES:
        rows.append([k] + [matrix[(k, l)] for l in L_VALUES])
    return render_table(
        ("k \\ l",) + tuple(str(l) for l in L_VALUES),
        rows,
        title=f"D-core sizes on a random digraph (n={n})",
    )


def test_dcore(benchmark, emit):
    n, matrix = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("dcore", _render(n, matrix))

    for k in K_VALUES:
        for l in L_VALUES:
            if k + 1 in K_VALUES:
                assert matrix[(k + 1, l)] <= matrix[(k, l)]
            if l + 1 in L_VALUES:
                assert matrix[(k, l + 1)] <= matrix[(k, l)]
    assert matrix[(0, 0)] == n


if __name__ == "__main__":
    n, matrix = sweep()
    print(_render(n, matrix))
