"""Ablation: scheduling-overhead (omega) sweep.

The whole VGC story hinges on the per-barrier scheduling cost: with a
free scheduler (omega -> 0) the plain online peel and Julienne would be
fine on sparse graphs; as omega grows, the algorithms with fewer
synchronizations win by ever larger margins.  This sweep varies the
simulated barrier cost and locates the crossover, quantifying how much
of our advantage is synchronization avoidance (the paper's Sec. 6.2.5
conclusion).
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core.baselines.julienne import julienne_kcore
from repro.core.parallel_kcore import ParallelKCore
from repro.generators import suite
from repro.runtime.cost_model import CostModelOverrides, nanos_to_millis

OMEGAS = (0.0, 100.0, 500.0, 2_000.0, 10_000.0)


def sweep(graph_name: str = "GRID"):
    graph = suite.load(graph_name)
    rows = []
    for omega_time in OMEGAS:
        model = CostModelOverrides().with_fields(omega_time=omega_time)
        ours = ParallelKCore(model=model).decompose(graph)
        jul = julienne_kcore(graph, model)
        rows.append(
            (
                omega_time,
                nanos_to_millis(ours.time_on(96)),
                nanos_to_millis(jul.metrics.time_on(96, model)),
            )
        )
    return rows


def _render(rows) -> str:
    table = [
        [omega, ours, jul, jul / ours] for omega, ours, jul in rows
    ]
    return render_table(
        ("omega_time", "ours (ms)", "julienne (ms)", "ratio"),
        table,
        title="Ablation: barrier-cost sweep on GRID",
    )


def test_ablation_omega(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_omega", _render(rows))

    ratios = {omega: jul / ours for omega, ours, jul in rows}
    # With a free scheduler the two algorithms are close...
    assert ratios[0.0] < 6.0
    # ...and our advantage grows monotonically with the barrier cost.
    ordered = [ratios[o] for o in OMEGAS]
    assert all(b >= a * 0.95 for a, b in zip(ordered, ordered[1:]))
    assert ratios[10_000.0] > 2 * ratios[0.0]


if __name__ == "__main__":
    print(_render(sweep()))
