"""Fig. 7: peeling subrounds with and without VGC (rho vs rho').

Paper shape: VGC reduces the number of subrounds by 5-40x; road networks
go from hundreds of subrounds to a handful per round.
"""

from __future__ import annotations

from repro.analysis import fig7_subrounds, render_table


def _render(data: dict) -> str:
    rows = [
        [name, without, with_vgc, without / max(with_vgc, 1)]
        for name, (without, with_vgc) in data.items()
    ]
    return render_table(
        ("graph", "rho (no VGC)", "rho' (VGC)", "reduction"),
        rows,
        title="Fig. 7: subrounds without vs with VGC",
    )


def test_fig7_subrounds(benchmark, emit):
    data = benchmark.pedantic(fig7_subrounds, rounds=1, iterations=1)
    emit("fig7_subrounds", _render(data))

    # VGC never increases the subround count...
    for name, (without, with_vgc) in data.items():
        assert with_vgc <= without, name
    # ...and collapses it on the chain-heavy graphs.
    for name in ("GRID", "AF-S", "EU-S", "TRCE-S"):
        without, with_vgc = data[name]
        assert without / max(with_vgc, 1) > 4, name


if __name__ == "__main__":
    print(_render(fig7_subrounds()))
