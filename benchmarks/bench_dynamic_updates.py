"""Extension bench: dynamic maintenance vs recomputation.

The paper's Sec. 7 points to dynamic k-core maintenance as the natural
companion problem.  This bench applies a batch of edge updates to a
suite graph and compares the locality of the subcore-based maintenance
(vertices touched per update) against the cost of full recomputation —
the measurement that motivates dynamic algorithms in the first place.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.dynamic import DynamicKCore
from repro.core.verify import reference_coreness
from repro.generators import suite
from repro.graphs.transform import all_edges

# Graphs with a graded coreness distribution keep subcores small; a
# uniform-coreness graph (AF-S: almost everything has coreness 2) is the
# traversal algorithm's known worst case — its subcore spans most of the
# graph, which is why later work introduced tighter candidate sets.
GRAPHS = ("LJ-S", "OK-S", "SD-S", "AF-S")
UPDATES = 200


def run_updates(graph_name: str):
    graph = suite.load(graph_name)
    rng = np.random.default_rng(7)
    dyn = DynamicKCore(graph)
    edges = all_edges(graph)
    delete_picks = rng.choice(edges.shape[0], size=UPDATES // 2, replace=False)
    inserts = rng.integers(0, graph.n, size=(UPDATES // 2, 2))
    for u, v in edges[delete_picks]:
        dyn.delete_edge(int(u), int(v))
    for u, v in inserts:
        dyn.insert_edge(int(u), int(v))
    # Exactness after the whole batch.
    assert np.array_equal(
        dyn.coreness, reference_coreness(dyn.snapshot())
    )
    touched_per_update = dyn.touched_vertices / max(dyn.updates, 1)
    return graph.n, dyn.updates, touched_per_update


def sweep():
    rows = []
    for name in GRAPHS:
        n, updates, touched = run_updates(name)
        rows.append([name, n, updates, touched, touched / n])
    return rows


def _render(rows) -> str:
    return render_table(
        ("graph", "n", "updates", "touched/update", "fraction of n"),
        rows,
        title="Dynamic maintenance: locality of subcore updates "
        "(full recompute touches n every time)",
    )


def test_dynamic_updates(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("dynamic_updates", _render(rows))

    fractions = {row[0]: row[4] for row in rows}
    # Graded-coreness graphs stay local, far below a full recompute...
    for name in ("LJ-S", "OK-S", "SD-S"):
        assert fractions[name] < 0.5, name
    # ...while the uniform-coreness road network is the documented worst
    # case of the traversal algorithm (subcore ~ the whole 2-core).
    assert fractions["AF-S"] <= 1.0


if __name__ == "__main__":
    print(_render(sweep()))
