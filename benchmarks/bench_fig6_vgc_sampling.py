"""Fig. 6: speedup of VGC, sampling, and both over the plain version.

Paper shape: sampling helps the dense hub graphs, VGC helps the sparse
graphs, nearly every graph benefits from at least one, and HCNS is the
one adversary where sampling costs more than it saves.
"""

from __future__ import annotations

from repro.analysis import fig6_ablation, render_table


def _render(points) -> str:
    rows = [
        [p.graph, p.vgc_speedup, p.sampling_speedup, p.both_speedup]
        for p in points
    ]
    return render_table(
        ("graph", "VGC", "sampling", "both"),
        rows,
        title="Fig. 6: speedup over the plain version (higher is better)",
    )


def test_fig6_vgc_sampling(benchmark, emit):
    points = benchmark.pedantic(fig6_ablation, rounds=1, iterations=1)
    emit("fig6_vgc_sampling", _render(points))

    by_name = {p.graph: p for p in points}
    # VGC shines on the sparse families.
    for name in ("GRID", "AF-S", "NA-S", "TRCE-S", "BBL-S"):
        assert by_name[name].vgc_speedup > 1.5, name
    # Sampling shines on the hub-heavy dense graphs.
    for name in ("TW-S", "HPL"):
        assert by_name[name].sampling_speedup > 1.3, name
    # HCNS: sampling is a net cost (the paper's ~24% overhead).
    assert by_name["HCNS"].sampling_speedup < 1.0
    # No dramatic regression from VGC anywhere.
    assert all(p.vgc_speedup > 0.7 for p in points)


if __name__ == "__main__":
    print(_render(fig6_ablation()))
