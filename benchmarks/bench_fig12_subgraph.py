"""Fig. 12: max k-core subgraph extraction vs the Galois-style baseline.

Paper shape: on the two social networks (OK, TW) and k from small to
large, our adapted framework beats Galois by 1.6-6.2x, with the gap
growing once real peeling happens (large hubs = contention for Galois).
"""

from __future__ import annotations

from repro.analysis import fig12_subgraph, render_table

GRAPHS = ("OK-S", "TW-S")
K_VALUES = (8, 16, 32, 64, 128)


def _render(data: dict) -> str:
    rows = []
    for name, series in data.items():
        for k, ours_ms, galois_ms in series:
            rows.append([name, k, ours_ms, galois_ms, galois_ms / ours_ms])
    return render_table(
        ("graph", "k", "ours (ms)", "galois (ms)", "speedup"),
        rows,
        title="Fig. 12: max k-core subgraph, ours vs Galois-style",
    )


def test_fig12_subgraph(benchmark, emit):
    data = benchmark.pedantic(
        lambda: fig12_subgraph(GRAPHS, K_VALUES), rounds=1, iterations=1
    )
    emit("fig12_subgraph", _render(data))

    for name, series in data.items():
        speedups = [galois / ours for _, ours, galois in series]
        # Ours wins clearly once peeling is non-trivial; at k values where
        # nothing (or everything in one wave) peels, the two are tied and
        # our sampler initialization can even cost a little, so only the
        # best point and the hub-heavy graph are asserted strongly.
        assert max(speedups) > 1.3, name
    tw = [galois / ours for _, ours, galois in data["TW-S"]]
    assert min(tw) > 1.5 and max(tw) > 4.0


if __name__ == "__main__":
    print(_render(fig12_subgraph(GRAPHS, K_VALUES)))
