"""Fig. 11: running time with and without sampling, trigger graphs only.

Paper shape: of the eight graphs that trigger sampling, all but HCNS get
faster with it (up to 4.3x); HCNS regresses (~24% in the paper) because
its validation sweeps touch half the vertex set every round.
"""

from __future__ import annotations

from repro.analysis import fig11_sampling, render_table
from repro.generators import SAMPLING_TRIGGER


def _render(data: dict) -> str:
    rows = [
        [name, without, with_s, without / with_s]
        for name, (without, with_s) in data.items()
    ]
    return render_table(
        ("graph", "no sampling (ms)", "sampling (ms)", "speedup"),
        rows,
        title="Fig. 11: effect of sampling on its trigger graphs",
    )


def test_fig11_sampling(benchmark, emit):
    data = benchmark.pedantic(fig11_sampling, rounds=1, iterations=1)
    emit("fig11_sampling", _render(data))

    helped = [
        name
        for name, (without, with_s) in data.items()
        if without / with_s > 1.0
    ]
    # Most trigger graphs benefit...
    assert len(helped) >= len(SAMPLING_TRIGGER) - 2, helped
    # ...the hub-heavy ones strongly...
    assert data["TW-S"][0] / data["TW-S"][1] > 1.5
    # ...and HCNS pays more than it gains.
    assert data["HCNS"][0] / data["HCNS"][1] < 1.05


if __name__ == "__main__":
    print(_render(fig11_sampling()))
