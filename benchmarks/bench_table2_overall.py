"""Table 2: overall running times of all algorithms on the full suite.

Paper shape to reproduce: our algorithm is the fastest parallel solution
on nearly every graph; each baseline falls behind a sequential run on at
least one family (Julienne on grids/meshes, ParK and PKC on hub-heavy
graphs and on HCNS).
"""

from __future__ import annotations

from repro.analysis import render_table2, table2


def test_table2_overall(benchmark, cache, emit):
    rows = benchmark.pedantic(
        lambda: table2(cache=cache), rounds=1, iterations=1
    )
    emit("table2", render_table2(rows))

    # Shape assertions (who wins where).
    by_name = {r.graph: r for r in rows}
    wins = sum(1 for r in rows if r.best_algorithm() == "ours")
    assert wins >= len(rows) * 0.6, f"ours wins only {wins}/{len(rows)}"
    # Our algorithm beats the best sequential time on every graph family
    # representative (Fig. 2's headline).
    for name in ("LJ-S", "AF-S", "GL5-S", "GRID"):
        row = by_name[name]
        seq_best = min(row.bz_ms, row.ours_seq_ms)
        assert row.ours_par_ms < seq_best, name


if __name__ == "__main__":
    from repro.analysis import ExperimentCache

    print(render_table2(table2(cache=ExperimentCache())))
