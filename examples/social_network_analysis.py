"""Identifying influential spreaders in a social network via k-core.

The paper's introduction motivates k-core decomposition with social-network
analysis: Kitsak et al. (Nature Physics 2010) showed that a vertex's
*coreness* predicts its spreading power better than its degree — celebrity
accounts with huge follower counts can sit in shallow cores, while modest
accounts embedded in dense communities drive cascades.

This example builds a Twitter-like graph (power law plus celebrity hubs),
decomposes it with the full algorithm, and contrasts the top vertices by
degree with the top vertices by coreness.  It also shows why this graph
family is exactly where the sampling technique earns its keep.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import ParallelKCore, generators
from repro.runtime.cost_model import nanos_to_millis


def main() -> None:
    graph = generators.power_law_with_hub(
        20_000, 8, hub_count=5, hub_degree=5_000, seed=42,
        name="social-sim", attach_min=2, hub_targets="fresh",
    )
    print(f"graph: n={graph.n:,} vertices, {graph.num_edges:,} edges, "
          f"max degree {graph.max_degree:,}")

    solver = ParallelKCore()
    result = solver.decompose(graph)
    coreness = result.coreness
    degrees = graph.degrees

    print(f"k_max = {result.kmax}; "
          f"innermost core holds {result.core_members(result.kmax).size} "
          f"vertices")

    # Degree picks the celebrity hubs; coreness picks the dense community.
    top_by_degree = np.argsort(degrees)[-5:][::-1]
    top_by_coreness = result.core_members(result.kmax)[:5]
    print("\ntop-5 by degree (celebrities):")
    for v in top_by_degree:
        print(f"  vertex {v}: degree={degrees[v]:,} "
              f"coreness={coreness[v]}")
    print("top-5 of the innermost core (dense community):")
    for v in top_by_coreness:
        print(f"  vertex {v}: degree={degrees[v]:,} "
              f"coreness={coreness[v]}")

    hubs_outside_core = sum(
        1 for v in top_by_degree if coreness[v] < result.kmax
    )
    core = result.core_members(result.kmax)
    print(f"\n{hubs_outside_core}/5 of the highest-degree celebrities sit "
          f"outside the innermost core, while the core holds "
          f"{core.size} vertices of median degree "
          f"{int(np.median(degrees[core]))} — degree is not spreading "
          f"power (Kitsak et al. 2010).")

    # Why sampling matters here: the hubs receive thousands of concurrent
    # degree decrements; sampling collapses that contention.
    plain = ParallelKCore(sampling=False, vgc=True, buckets="adaptive")
    t_plain = plain.decompose(graph).time_on(96)
    t_sampled = result.time_on(96)
    print(f"\nsimulated 96-thread time: "
          f"without sampling {nanos_to_millis(t_plain):.3f} ms, "
          f"with sampling {nanos_to_millis(t_sampled):.3f} ms "
          f"({t_plain / t_sampled:.2f}x)")
    print(f"max contention without sampling: "
          f"{plain.decompose(graph).metrics.max_contention}, "
          f"with: {result.metrics.max_contention}")


if __name__ == "__main__":
    main()
