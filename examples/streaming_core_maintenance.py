"""Maintaining coreness over a stream of edge updates.

A fraud-detection or social-feed pipeline cannot re-decompose a graph on
every new follow/unfollow.  This example feeds a stream of edge
insertions and deletions into :class:`repro.core.DynamicKCore`, which
updates coreness locally via the subcore traversal, and periodically
cross-checks against a full recomputation.

Run:  python examples/streaming_core_maintenance.py
"""

import numpy as np

from repro.core.dynamic import DynamicKCore
from repro.core.verify import reference_coreness
from repro.generators import barabasi_albert
from repro.graphs.transform import all_edges


def main() -> None:
    graph = barabasi_albert(
        5_000, 10, seed=3, attach_min=2, name="stream-base"
    )
    print(f"base graph: n={graph.n:,}, edges={graph.num_edges:,}, "
          f"k_max={int(reference_coreness(graph).max())}")

    dyn = DynamicKCore(graph)
    rng = np.random.default_rng(99)
    existing = all_edges(graph)

    total_risers = 0
    total_droppers = 0
    for step in range(500):
        if rng.random() < 0.5:
            u, v = (int(x) for x in rng.integers(0, graph.n, size=2))
            total_risers += dyn.insert_edge(u, v).size
        else:
            idx = int(rng.integers(existing.shape[0]))
            u, v = (int(x) for x in existing[idx])
            total_droppers += dyn.delete_edge(u, v).size

    print(f"after 500 streamed updates ({dyn.updates} effective):")
    print(f"  coreness increases propagated to {total_risers} vertices")
    print(f"  coreness decreases propagated to {total_droppers} vertices")
    print(f"  vertices touched per update: "
          f"{dyn.touched_vertices / max(dyn.updates, 1):.1f} "
          f"(vs {graph.n} for a full recompute)")

    recomputed = reference_coreness(dyn.snapshot())
    assert np.array_equal(dyn.coreness, recomputed)
    print("maintained coreness verified against a full recomputation.")


if __name__ == "__main__":
    main()
