"""k-core robustness analysis: targeted attacks on a network's core.

The paper's introduction motivates k-core with system-robustness studies
(Burleson-Lesser et al. 2020; Sun et al. 2020) and critical-user
detection (Zhang et al. 2017).  This example compares three attack
strategies on a community-structured network:

* random vertex removal,
* highest-degree removal,
* the greedy *collapsed k-core* attack (critical users),

measuring how fast each destroys the k-core — the classic finding being
that degree is a poor proxy for structural criticality.

Run:  python examples/network_robustness.py
"""

import numpy as np

from repro.core.anchored import anchored_kcore
from repro.core.collapse import collapse_kcore_greedy
from repro.core.verify import reference_coreness
from repro.generators import cycle_graph
from repro.graphs.csr import CSRGraph
from repro.graphs.transform import (
    all_edges,
    disjoint_union,
    remove_edges,
    remove_vertices,
)


def build_network(seed: int = 11) -> CSRGraph:
    """Fragile ring communities plus a robust high-degree clique.

    The rings are 2-cores that unravel entirely when any member leaves;
    the 10-clique members have the highest degrees but their community
    survives any few removals — degree is not criticality.
    """
    graph = cycle_graph(30)
    for _ in range(7):
        graph = disjoint_union(graph, cycle_graph(30))
    edges = [tuple(e) for e in all_edges(graph)]
    # Sparse bridges between ring communities.
    for c in range(7):
        edges.append((c * 30 + 3, (c + 1) * 30 + 5))
    # A celebrity clique: max degree, structurally redundant.
    n = graph.n
    clique = [(n + a, n + b) for a in range(10) for b in range(a + 1, 10)]
    anchors = [(n, 3), (n + 1, 40)]
    return CSRGraph.from_edges(
        n + 10, edges + clique + anchors, name="robust-sim"
    )


def core_size_after(graph: CSRGraph, removed, k: int) -> int:
    survivor = remove_vertices(graph, list(removed))
    return int((reference_coreness(survivor) >= k).sum())


def main() -> None:
    k = 2
    budget = 4
    graph = build_network()
    base = int((reference_coreness(graph) >= k).sum())
    print(f"network: n={graph.n}, {k}-core size {base}")

    rng = np.random.default_rng(4)
    random_picks = rng.choice(graph.n, size=budget, replace=False)
    random_core = core_size_after(graph, random_picks, k)

    by_degree = np.argsort(graph.degrees)[-budget:]
    degree_core = core_size_after(graph, by_degree, k)

    greedy = collapse_kcore_greedy(graph, k, budget)
    greedy_core = greedy.core_sizes[-1]

    print(f"\nafter removing {budget} vertices:")
    print(f"  random removal:        {k}-core -> {random_core} "
          f"(-{base - random_core})")
    print(f"  highest-degree attack: {k}-core -> {degree_core} "
          f"(-{base - degree_core})")
    print(f"  collapsed-k-core:      {k}-core -> {greedy_core} "
          f"(-{base - greedy_core})")
    print(f"\ncritical users found: {greedy.removed} "
          f"(cascades of {greedy.followers} followers)")
    print("The clique members have the highest degree but removing them "
          "barely dents the core; the greedy finds the ring vertices "
          "whose loss unravels whole communities.")

    # Repair: anchoring the two ring-neighbors of each departed critical
    # user pins the broken chain's endpoints, and the whole ring re-joins
    # (the anchored k-core — the defensive dual of the attack).  Note the
    # anchors only work in *pairs*: the one-at-a-time greedy cannot find
    # them (the known myopia of greedy anchoring).
    incident = [
        (int(v), int(u))
        for v in greedy.removed
        for u in graph.neighbors(v)
    ]
    damaged = remove_edges(graph, incident)  # ids preserved
    plain_core = int((reference_coreness(damaged) >= k).sum())
    repair_anchors = sorted(
        {u for v, u in incident if u not in greedy.removed}
    )
    repaired = int(anchored_kcore(damaged, k, repair_anchors).sum())
    print(f"\nrepair by anchoring the {len(repair_anchors)} neighbors "
          f"of the departed users: {k}-core {plain_core} -> {repaired} "
          f"(+{repaired - plain_core} members won back)")


if __name__ == "__main__":
    main()
