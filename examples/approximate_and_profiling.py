"""Approximate decomposition and Cilkview-style profiling.

Two power tools for large-graph practice:

1. when only the *scale* of each vertex's coreness matters (feature
   engineering, tiering), the (1+eps)-approximate decomposition delivers
   it in O(log d_max / eps) geometric phases instead of one peeling round
   per coreness value;
2. the parallelism profiler explains *where* a configuration spends its
   simulated time — the same burdened-span lens the paper uses to explain
   why VGC beats Julienne.

Run:  python examples/approximate_and_profiling.py
"""

from repro import ParallelKCore, generators
from repro.core.approximate import approximate_coreness
from repro.core.verify import reference_coreness
from repro.runtime.profiler import profile, render_report


def main() -> None:
    graph = generators.load("SD-S")
    exact = reference_coreness(graph)

    print("=== approximate decomposition (web graph, kmax "
          f"{int(exact.max())}) ===")
    exact_run = ParallelKCore().decompose(graph)
    for eps in (1.0, 0.5, 0.1):
        approx = approximate_coreness(graph, eps=eps)
        nonzero = exact > 0
        ratio = approx.coreness[nonzero] / exact[nonzero]
        print(f"eps={eps:4.1f}: subrounds {approx.rho:4d} "
              f"(exact uses {exact_run.rho}), "
              f"max over-estimate {ratio.max():.3f}x, "
              f"mean {ratio.mean():.3f}x")

    print("\n=== profiling: plain vs full configuration ===")
    for label, solver in (
        ("plain", ParallelKCore.plain()),
        ("all techniques", ParallelKCore()),
    ):
        result = solver.decompose(graph)
        report = profile(result.metrics)
        print(f"\n--- {label} ---")
        print(render_report(report))
        print(f"dominant cost: {report.dominant_tag()}")


if __name__ == "__main__":
    main()
