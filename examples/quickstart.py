"""Quickstart: decompose a graph and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import ParallelKCore, check_coreness, generators
from repro.graphs import graph_stats
from repro.runtime.cost_model import nanos_to_millis


def main() -> None:
    # Any CSRGraph works; the suite ships scaled analogues of the paper's
    # datasets.  LJ-S mirrors soc-LiveJournal1.
    graph = generators.load("LJ-S")
    print(graph_stats(graph).describe())

    # The default solver enables all three techniques of the paper:
    # sampling, vertical granularity control, and the adaptive HBS.
    solver = ParallelKCore()
    result = solver.decompose(graph)

    print(f"maximum coreness (k_max): {result.kmax}")
    print(f"peeling subrounds (rho):  {result.rho}")
    print(f"vertices in the {result.kmax}-core: "
          f"{result.core_members(result.kmax).size}")

    # Simulated performance on the paper's 96-core machine.
    t1 = nanos_to_millis(result.time_on(1))
    t96 = nanos_to_millis(result.time_on(96))
    print(f"simulated time: 1 thread = {t1:.3f} ms, "
          f"96 threads = {t96:.3f} ms (speedup {t1 / t96:.1f}x)")

    # The decomposition is certified against an independent reference.
    assert check_coreness(graph, result.coreness)
    print("decomposition verified.")


if __name__ == "__main__":
    main()
