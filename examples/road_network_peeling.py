"""Peeling a road network: where vertical granularity control shines.

Road networks are the paper's canonical *sparse* workload: tiny degrees,
tiny coreness (k_max = 3 or 4), but long peeling chains — removing one
dead-end street exposes the next, for hundreds of synchronous subrounds.
A batch-synchronous peeler pays a scheduling barrier per subround and ends
up slower than a laptop running the sequential algorithm.

VGC collapses those chains into local searches.  This example measures the
subround counts and simulated times with and without it, and prints the
scalability curve of the full algorithm (the paper's Fig. 10).

Run:  python examples/road_network_peeling.py
"""

from repro import ParallelKCore, generators
from repro.core.baselines import julienne_kcore
from repro.runtime.cost_model import nanos_to_millis
from repro.runtime.scheduler import speedup_curve


def main() -> None:
    graph = generators.road_like(60_000, seed=7, name="road-sim")
    print(f"road network: n={graph.n:,}, edges={graph.num_edges:,}, "
          f"max degree {graph.max_degree}")

    no_vgc = ParallelKCore(vgc=False, sampling=False, buckets="adaptive")
    with_vgc = ParallelKCore(vgc=True, sampling=False, buckets="adaptive")

    r_plain = no_vgc.decompose(graph)
    r_vgc = with_vgc.decompose(graph)
    r_julienne = julienne_kcore(graph)

    print(f"\nk_max = {r_vgc.kmax}")
    print(f"subrounds: {r_plain.rho} without VGC -> {r_vgc.rho} with VGC "
          f"({r_plain.rho / max(r_vgc.rho, 1):.1f}x fewer)")
    print(f"vertices absorbed by local searches: "
          f"{r_vgc.metrics.local_search_hits:,} of {graph.n:,}")

    for label, result in (
        ("ours without VGC", r_plain),
        ("ours with VGC", r_vgc),
        ("Julienne (offline)", r_julienne),
    ):
        print(f"  {label:20s} t96 = "
              f"{nanos_to_millis(result.time_on(96)):8.3f} ms")

    print("\nscalability of the full algorithm (self-relative speedup):")
    for point in speedup_curve(r_vgc.metrics):
        label = "96h" if point.threads == 192 else str(point.threads)
        bar = "#" * int(point.speedup)
        print(f"  {label:>4s} threads: {point.speedup:6.2f}x {bar}")


if __name__ == "__main__":
    main()
