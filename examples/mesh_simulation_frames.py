"""Peeling simulation meshes: the TRCE / BBL scenario.

The paper evaluates on meshes taken from frames of 2-D adaptive numerical
simulations (TRCE, BBL): planar graphs with coreness 2-3 but thousands of
peeling subrounds, which bring batch-synchronous peelers to their knees.
This example generates a sequence of "simulation frames" (Delaunay meshes
of a moving, refining point cloud), decomposes each, and tracks how the
technique ablation behaves frame over frame — the kind of repeated
analysis an in-situ pipeline would run.

Run:  python examples/mesh_simulation_frames.py
"""

from repro import ParallelKCore, generators
from repro.runtime.cost_model import nanos_to_millis


def main() -> None:
    frames = [
        generators.delaunay_mesh(12_000, seed=100 + t, name=f"frame-{t}")
        for t in range(4)
    ]

    plain = ParallelKCore.plain()
    full = ParallelKCore()

    print(f"{'frame':<10s} {'n':>7s} {'edges':>8s} {'kmax':>5s} "
          f"{'rho plain':>10s} {'rho VGC':>8s} "
          f"{'plain ms':>9s} {'ours ms':>8s} {'gain':>6s}")
    for frame in frames:
        r_plain = plain.decompose(frame)
        r_full = full.decompose(frame)
        t_plain = nanos_to_millis(r_plain.time_on(96))
        t_full = nanos_to_millis(r_full.time_on(96))
        print(f"{frame.name:<10s} {frame.n:>7,} {frame.num_edges:>8,} "
              f"{r_full.kmax:>5d} {r_plain.rho:>10d} {r_full.rho:>8d} "
              f"{t_plain:>9.3f} {t_full:>8.3f} "
              f"{t_plain / t_full:>5.2f}x")

    print("\nEvery frame peels in a fraction of the plain version's time: "
          "the local searches absorb the mesh's long peeling chains.")


if __name__ == "__main__":
    main()
