"""Dense-subgraph discovery with maximum k-core extraction (Appendix B).

Community detection and anomaly detection pipelines frequently need "the
maximal subgraph where everyone has at least k connections" — the maximum
k-core.  The paper adapts its framework to this task and beats Galois by
1.6-6.2x on social networks.

This example sweeps k on a scaled Orkut-like graph, reports how the core
shrinks, extracts one core as a standalone graph, and compares against the
Galois-style worklist baseline.

Run:  python examples/dense_subgraph_discovery.py
"""

from repro import generators, max_kcore_subgraph
from repro.core.baselines import galois_max_kcore
from repro.graphs import graph_stats
from repro.runtime.cost_model import nanos_to_millis


def main() -> None:
    graph = generators.load("OK-S")
    print(graph_stats(graph).describe())

    print(f"\n{'k':>4s} {'core size':>10s} {'core edges':>11s} "
          f"{'ours (ms)':>10s} {'galois (ms)':>12s} {'speedup':>8s}")
    extracted = None
    for k in (8, 16, 20, 24, 32):
        ours = max_kcore_subgraph(graph, k)
        galois = galois_max_kcore(graph, k)
        assert (ours.members == galois.members).all()
        t_ours = nanos_to_millis(ours.metrics.time_on(96))
        t_galois = nanos_to_millis(galois.metrics.time_on(96))
        core = ours.extract(graph) if ours.size else None
        edges = core.num_edges if core is not None else 0
        print(f"{k:>4d} {ours.size:>10,} {edges:>11,} "
              f"{t_ours:>10.3f} {t_galois:>12.3f} "
              f"{t_galois / t_ours:>7.2f}x")
        if core is not None and core.n:
            extracted = (k, core)

    if extracted is not None:
        k, core = extracted
        print(f"\nextracted the {k}-core as a standalone graph: "
              f"n={core.n:,}, edges={core.num_edges:,}, "
              f"min degree {core.degrees.min()} (>= {k} by construction)")


if __name__ == "__main__":
    main()
