"""Tracing the hierarchical bucketing structure — the paper's Fig. 4.

The HBS keeps single-key buckets for the next eight coreness values and
dyadic range buckets beyond them; when a range bucket becomes the
minimum it *splits* into a refined layout and its members redistribute.
This example decomposes a graph with a wide degree spread and prints the
interval layout each time the front of the structure changes — the
textual version of Fig. 4's rows.

Run:  python examples/hbs_interval_trace.py
"""

import numpy as np

from repro.core.peel_online import OnlinePeel
from repro.core.state import PeelState
from repro.generators import hcns
from repro.runtime.simulator import SimRuntime
from repro.structures.hbs import HierarchicalBuckets


def format_layout(intervals, limit=9):
    parts = []
    for lo, hi in intervals[:limit]:
        parts.append(f"[{lo}]" if lo == hi else f"[{lo}-{hi}]")
    if len(intervals) > limit:
        parts.append("...")
    return " ".join(parts)


def main() -> None:
    # High-coreness chain + clique: keys spread from 1 to 64.
    graph = hcns(64)
    print(f"graph: n={graph.n}, max degree {graph.max_degree}\n")

    runtime = SimRuntime()
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(graph.n, dtype=bool)
    coreness = np.zeros(graph.n, dtype=np.int64)
    structure = HierarchicalBuckets()
    structure.build(graph, dtilde, peeled, runtime)
    peel = OnlinePeel()
    state = PeelState(
        graph=graph, dtilde=dtilde, peeled=peeled, coreness=coreness,
        runtime=runtime, buckets=structure,
    )

    print(f"initial layout: {format_layout(structure._intervals)}\n")
    last = None
    while True:
        step = structure.next_round()
        if step is None:
            break
        k, frontier = step
        layout = format_layout(structure._intervals)
        if layout != last:
            print(f"k={k:>3d} (|F|={frontier.size:>3d})  {layout}")
            last = layout
        while frontier.size:
            coreness[frontier] = k
            peeled[frontier] = True
            frontier = peel.subround(state, frontier, k)

    print(f"\ndone: k_max = {int(coreness.max())}; every split "
          f"re-buckets only the front interval's members — O(log d) "
          f"moves per vertex, the bound of Sec. 5.2.")


if __name__ == "__main__":
    main()
