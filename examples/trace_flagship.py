"""Trace the flagship solver: spans on the simulated clock, Perfetto export.

Attaches a :class:`repro.trace.Tracer` to one decomposition, prints the
per-round text timeline, and writes two artifacts:

* ``flagship.trace.json`` — Chrome/Perfetto trace-event JSON; load it in
  https://ui.perfetto.dev to see round/subround span tracks, per-step
  spans, and the frontier/contention counter tracks;
* ``flagship.folded`` — collapsed stacks for ``flamegraph.pl`` or
  speedscope, showing where the simulated time goes by tag.

Run:  python examples/trace_flagship.py
"""

from pathlib import Path

from repro import ParallelKCore, generators
from repro.trace import Tracer, render_flamegraph, render_text, write_trace


def main(output_dir: str = "traces") -> None:
    # The tiny rendition keeps this instant; drop tiny=True for the
    # full-size suite graph.
    graph = generators.load("LJ-S", tiny=True)

    tracer = Tracer(label="All/LJ-S.tiny")
    result = ParallelKCore().decompose(graph, tracer=tracer)
    tracer.finish()

    # The quick look: one line per peeling round, no UI needed.
    print(render_text(tracer))

    # The telemetry is also available as plain dicts — find the round
    # that did the most simulated work.
    busiest = max(tracer.telemetry(), key=lambda r: r["work"])
    print(
        f"busiest round: k={busiest['k']} "
        f"({busiest['subrounds']} subrounds, "
        f"peak frontier {busiest['peak_frontier']}, "
        f"{busiest['absorbed']} VGC absorptions)"
    )
    print(f"kmax={result.kmax}")

    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    write_trace(tracer, str(out / "flagship.trace.json"))
    (out / "flagship.folded").write_text(render_flamegraph(tracer) + "\n")
    print(f"wrote {out / 'flagship.trace.json'} (open in ui.perfetto.dev)")
    print(f"wrote {out / 'flagship.folded'} (collapsed stacks)")


if __name__ == "__main__":
    main()
