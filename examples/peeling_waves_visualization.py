"""Visualizing the peeling waves of Fig. 3 — why grids hurt, how VGC helps.

On a grid, synchronous peeling proceeds as diagonal waves from the
corners: O(sqrt(n)) subrounds, each a tiny frontier — a scheduling
nightmare.  VGC's local searches chase the waves inside a single task,
collapsing them to a handful of subrounds.

This example prints the subround index of every grid cell (mod 10) with
and without VGC: the left picture shows the classic concentric rings,
the right one shows a few large blobs.

Run:  python examples/peeling_waves_visualization.py
"""

from repro.analysis.peeling import peeling_profile, render_wave_grid
from repro.generators import grid_2d

ROWS, COLS = 14, 28


def main() -> None:
    graph = grid_2d(ROWS, COLS)

    plain = peeling_profile(graph, vgc=False)
    vgc = peeling_profile(graph, vgc=True, queue_size=64)

    print(f"{ROWS}x{COLS} grid — subround of each cell (mod 10)\n")
    print(f"without VGC: {plain.subrounds} subrounds")
    print(render_wave_grid(plain, ROWS, COLS))
    print(f"\nwith VGC:    {vgc.subrounds} subrounds "
          f"({plain.subrounds / max(vgc.subrounds, 1):.1f}x fewer)")
    print(render_wave_grid(vgc, ROWS, COLS))

    sizes = plain.frontier_sizes
    print(f"\nfrontier sizes without VGC: min={min(sizes)}, "
          f"median={sorted(sizes)[len(sizes) // 2]}, max={max(sizes)}")
    print("Tiny frontiers x many subrounds = barrier cost dominates; "
          "that is the whole story of the paper's Fig. 2 GRID column.")


if __name__ == "__main__":
    main()
