"""Head-to-head comparison of every algorithm on a graph of your choice.

Reproduces one row of the paper's Table 2: our algorithm (all techniques),
its plain ablation, Julienne, ParK, PKC, and the sequential BZ — with the
peeling statistics that explain the differences.

Run:  python examples/algorithm_comparison.py [suite-graph-name]
      (default: TW-S, the scaled Twitter analogue)
"""

import sys

from repro import generators
from repro.analysis import ALGORITHMS, run_on
from repro.graphs import graph_stats


def main(name: str = "TW-S") -> None:
    graph = generators.load(name)
    print(graph_stats(graph).describe())
    print()

    records = {
        algo: run_on(algo, graph) for algo in ALGORITHMS
    }
    print(f"{'algorithm':<12s} {'t96 (ms)':>10s} {'t1 (ms)':>10s} "
          f"{'spd':>6s} {'rho':>6s} {'max cont.':>10s}")
    for algo, record in sorted(
        records.items(), key=lambda kv: kv[1].time_ms
    ):
        print(f"{algo:<12s} {record.time_ms:>10.3f} {record.seq_ms:>10.3f} "
              f"{record.self_speedup:>6.1f} {record.rho:>6d} "
              f"{record.max_contention:>10d}")

    best_parallel = min(
        (r for a, r in records.items() if a != "bz"),
        key=lambda r: r.time_ms,
    )
    seq_best = min(records["bz"].seq_ms, records["ours"].seq_ms)
    print(f"\nfastest parallel: {best_parallel.algorithm} "
          f"({seq_best / best_parallel.time_ms:.1f}x over the best "
          f"sequential time)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "TW-S")
