"""Beyond plain k-core: weighted cores and k-truss communities.

The peeling machinery generalizes: Batagelj–Zaversnik's *generalized
cores* replace degree with any monotone vertex function (here: edge-
weight sums — "s-cores"), and the *k-truss* peels edges by triangle
support, yielding tighter communities than the k-core.

This example builds a collaboration-style network (weighted by repeat
interactions, with an embedded dense team), then contrasts what the
three notions of "dense group" recover.

Run:  python examples/weighted_and_truss_cores.py
"""

import numpy as np

from repro import ParallelKCore, generators
from repro.core.generalized import symmetric_arc_weights, weighted_coreness
from repro.core.truss import ktruss_subgraph, truss_decomposition
from repro.graphs.csr import CSRGraph
from repro.graphs.transform import all_edges


def build_collaboration_graph(seed: int = 5):
    """An interaction graph with an embedded 9-person team."""
    rng = np.random.default_rng(seed)
    # Background dense enough that its top k-core rivals the team's.
    background = generators.erdos_renyi(400, 14.0, seed=seed)
    team = [(u, v) for u in range(9) for v in range(u + 1, 9)]
    edges = np.concatenate([all_edges(background), np.array(team)])
    return CSRGraph.from_edges(400, edges, name="collab")


def main() -> None:
    graph = build_collaboration_graph()
    print(f"collaboration graph: n={graph.n}, edges={graph.num_edges}")

    # 1. Plain k-core: the dense background outranks the small team.
    result = ParallelKCore().decompose(graph)
    core = result.core_members(result.kmax)
    team_in_core = int(np.isin(np.arange(9), core).sum())
    print(f"\nk-core ({result.kmax}-core): {core.size} members, "
          f"only {team_in_core}/9 of the team")

    # 2. Weighted cores: team edges carry weight 5 (repeat interactions).
    weights = symmetric_arc_weights(
        graph, lambda u, v: 5.0 if u < 9 and v < 9 else 1.0
    )
    s_core = weighted_coreness(graph, weights)
    top_level = s_core.max()
    s_members = np.nonzero(s_core >= top_level)[0]
    print(f"weighted s-core (level {top_level:.0f}): "
          f"{s_members.size} members "
          f"({'exactly the team' if set(s_members.tolist()) == set(range(9)) else 'mixed'})")

    # 3. k-truss: triangles, not just degrees.
    _, trussness = truss_decomposition(graph)
    tmax = int(trussness.max())
    truss = ktruss_subgraph(graph, tmax)
    members = np.nonzero(truss.degrees > 0)[0]
    print(f"max k-truss ({tmax}-truss): {members.size} members "
          f"({'exactly the team' if set(members.tolist()) == set(range(9)) else 'mixed'})")

    print("\nThe k-core is fooled by incidental degree; weighting by "
          "interaction strength or requiring triangle support recovers "
          "the planted team cleanly.")


if __name__ == "__main__":
    main()
