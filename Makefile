# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test lint lint-changed bench bench-large bench-figures bench-updates bench-trend bench-shard examples clean loc regress regress-bless oracle oracle-updates oracle-shard serve-smoke obs-smoke shard-smoke trace

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

LINT_ROOTS = src/ tests/ benchmarks/ examples/ tools/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint $(LINT_ROOTS) \
		--cache .lint-cache --baseline .lint-baseline.json

# Analyze the whole program (cross-module rules need full context) but
# report findings only for files changed relative to origin/main.
lint-changed:
	PYTHONPATH=src $(PYTHON) -m repro.lint $(LINT_ROOTS) \
		--cache .lint-cache --baseline .lint-baseline.json \
		--only "$$(git diff --name-only origin/main... -- '*.py' | paste -sd, -)"

regress:
	PYTHONPATH=src $(PYTHON) -m repro.regress run

regress-bless:
	PYTHONPATH=src $(PYTHON) -m repro.regress bless

oracle:
	PYTHONPATH=src $(PYTHON) -m repro.regress oracle

oracle-updates:
	PYTHONPATH=src $(PYTHON) -m repro.regress oracle-updates

# Shard counts {1,2,3,4,7} vs the single-process oracle: bit-equal
# coreness and identical simulated ledger on the whole generator suite.
oracle-shard:
	PYTHONPATH=src $(PYTHON) -m repro.regress oracle-shard

# One sharded decomposition at three worker counts; the reports must be
# byte-identical (the worker-count invariance contract).
shard-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.shard GRID --tiny --workers 1 \
		--output shard-smoke-w1.json
	PYTHONPATH=src $(PYTHON) -m repro.shard GRID --tiny --workers 2 \
		--output shard-smoke-w2.json
	cmp shard-smoke-w1.json shard-smoke-w2.json

serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.serve --tiny

obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.serve --tiny --metrics \
		--metrics-output serve-tiny.obs.json --prom serve-tiny.prom \
		--output serve-tiny.json

# Re-run the tiny matrix cold and gate it against the committed baseline.
bench-trend:
	PYTHONPATH=src $(PYTHON) -m repro.bench --tiny --refresh \
		--cache-dir .bench_cache_trend \
		--output BENCH_wallclock_tiny_fresh.json
	PYTHONPATH=src $(PYTHON) -m repro.obs trend \
		BENCH_wallclock_tiny.json BENCH_wallclock_tiny_fresh.json \
		--max-regress 1.25

bench:
	PYTHONPATH=src $(PYTHON) -m repro.bench

bench-large:
	PYTHONPATH=src REPRO_GRAPH_CACHE=.graph_cache $(PYTHON) -m repro.bench --large --output BENCH_wallclock_large.json

bench-updates:
	PYTHONPATH=src $(PYTHON) -m repro.bench --updates

bench-shard:
	PYTHONPATH=src REPRO_GRAPH_CACHE=.graph_cache $(PYTHON) -m repro.bench --shard --large

trace:
	PYTHONPATH=src $(PYTHON) -m repro.trace ours LJ-S --flame LJ-S.folded

bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "=== $$f"; $(PYTHON) $$f || exit 1; done

loc:
	@find src tests benchmarks examples -name "*.py" | xargs wc -l | tail -1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
